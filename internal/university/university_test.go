package university

import (
	"strings"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/structural"
)

func TestSchemaMatchesFigure1(t *testing.T) {
	db, g := New()
	wantRels := []string{Courses, Curriculum, Department, Faculty, Grades, People, Staff, Student}
	if got := strings.Join(db.Names(), ","); got != strings.Join(wantRels, ",") {
		t.Fatalf("relations = %v", db.Names())
	}
	if len(g.Connections()) != 9 {
		t.Fatalf("connections = %d, want 9", len(g.Connections()))
	}
	// Spot-check the connection types the paper's figures rely on.
	checks := []struct {
		name string
		typ  structural.ConnType
		from string
		to   string
	}{
		{ConnCourseGrades, structural.Ownership, Courses, Grades},
		{ConnStudentGrades, structural.Ownership, Student, Grades},
		{ConnDeptCurriculum, structural.Ownership, Department, Curriculum},
		{ConnCurriculumCourse, structural.Reference, Curriculum, Courses},
		{ConnCourseDept, structural.Reference, Courses, Department},
		{ConnPersonDept, structural.Reference, People, Department},
		{ConnPersonStudent, structural.Subset, People, Student},
		{ConnPersonFaculty, structural.Subset, People, Faculty},
		{ConnPersonStaff, structural.Subset, People, Staff},
	}
	for _, c := range checks {
		conn, ok := g.Connection(c.name)
		if !ok {
			t.Errorf("connection %s missing", c.name)
			continue
		}
		if conn.Type != c.typ || conn.From != c.from || conn.To != c.to {
			t.Errorf("connection %s = %s, want %s %s %s", c.name, conn, c.from, c.typ, c.to)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Figure 1 schema does not validate: %v", err)
	}
}

// The paper's figures depend on two distinct paths from COURSES to PEOPLE.
func TestTwoPathsFromCoursesToPeople(t *testing.T) {
	_, g := New()
	// Path 1: COURSES --> DEPARTMENT, then inverse(PEOPLE --> DEPARTMENT).
	if _, ok := g.Connection(ConnCourseDept); !ok {
		t.Fatal("path 1 missing course-dept")
	}
	if _, ok := g.Connection(ConnPersonDept); !ok {
		t.Fatal("path 1 missing person-dept")
	}
	// Path 2: COURSES --* GRADES, inverse(STUDENT --* GRADES),
	// inverse(PEOPLE --) STUDENT).
	if _, ok := g.Connection(ConnCourseGrades); !ok {
		t.Fatal("path 2 missing course-grades")
	}
	if _, ok := g.Connection(ConnStudentGrades); !ok {
		t.Fatal("path 2 missing student-grades")
	}
}

func TestSeedIsAuditClean(t *testing.T) {
	db, g, err := NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	in := &structural.Integrity{G: g}
	vs, err := in.Audit(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("seed violates the structural model:\n%s", structural.FormatViolations(vs))
	}
}

func TestSeedContainsPaperEntities(t *testing.T) {
	db, _ := MustNewSeeded()
	// CS345 exists, is graduate, belongs to Computer Science.
	cs345, ok := db.MustRelation(Courses).Get(reldb.Tuple{reldb.String("CS345")})
	if !ok {
		t.Fatal("CS345 missing")
	}
	if lvl, _ := cs345[4].AsString(); lvl != "graduate" {
		t.Fatalf("CS345 level = %v", cs345[4])
	}
	if dept, _ := cs345[2].AsString(); dept != "Computer Science" {
		t.Fatalf("CS345 dept = %v", cs345[2])
	}
	// Fewer than 5 students enrolled in CS345 (Figure 4's predicate).
	grades, err := db.MustRelation(Grades).MatchEqual([]string{"CourseID"}, reldb.Tuple{reldb.String("CS345")})
	if err != nil {
		t.Fatal(err)
	}
	if len(grades) >= 5 {
		t.Fatalf("CS345 has %d grades; Figure 4 needs < 5", len(grades))
	}
	// "Engineering Economic Systems" must NOT exist (§6's example inserts it).
	if db.MustRelation(Department).Has(reldb.Tuple{reldb.String("Engineering Economic Systems")}) {
		t.Fatal("EES should not be pre-seeded")
	}
	// EE380 is graduate with 5 students: must not satisfy Figure 4.
	grades, _ = db.MustRelation(Grades).MatchEqual([]string{"CourseID"}, reldb.Tuple{reldb.String("EE380")})
	if len(grades) != 5 {
		t.Fatalf("EE380 has %d grades, want 5", len(grades))
	}
}

func TestSeedIsIdempotentPerDatabase(t *testing.T) {
	db, _ := New()
	if err := Seed(db); err != nil {
		t.Fatal(err)
	}
	if err := Seed(db); err == nil {
		t.Fatal("second Seed should fail on duplicate keys")
	}
	// And the failed second seed must not have half-applied.
	if got := db.MustRelation(Department).Count(); got != 3 {
		t.Fatalf("departments = %d after failed reseed", got)
	}
}

func TestSeedScaled(t *testing.T) {
	db, g := New()
	spec := ScaleSpec{
		Departments:      3,
		StudentsPerDept:  10,
		FacultyPerDept:   2,
		CoursesPerDept:   4,
		GradesPerCourse:  5,
		DegreesPerDept:   2,
		CoursesPerDegree: 2,
	}
	if err := SeedScaled(db, spec); err != nil {
		t.Fatal(err)
	}
	if got := db.MustRelation(Department).Count(); got != 3 {
		t.Fatalf("departments = %d", got)
	}
	if got := db.MustRelation(Student).Count(); got != 30 {
		t.Fatalf("students = %d", got)
	}
	if got := db.MustRelation(Faculty).Count(); got != 6 {
		t.Fatalf("faculty = %d", got)
	}
	if got := db.MustRelation(Courses).Count(); got != 12 {
		t.Fatalf("courses = %d", got)
	}
	if got := db.MustRelation(Grades).Count(); got != 60 {
		t.Fatalf("grades = %d", got)
	}
	in := &structural.Integrity{G: g}
	vs, err := in.Audit(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("scaled seed violates the structural model:\n%s", structural.FormatViolations(vs))
	}
}

func TestSeedScaledGradesCappedByStudents(t *testing.T) {
	db, _ := New()
	spec := ScaleSpec{
		Departments:     1,
		StudentsPerDept: 2,
		CoursesPerDept:  1,
		GradesPerCourse: 10, // more than students available
	}
	if err := SeedScaled(db, spec); err != nil {
		t.Fatal(err)
	}
	if got := db.MustRelation(Grades).Count(); got != 2 {
		t.Fatalf("grades = %d, want capped at 2", got)
	}
}

func TestScaledSeedDeterministic(t *testing.T) {
	spec := ScaleSpec{Departments: 2, StudentsPerDept: 3, CoursesPerDept: 2, GradesPerCourse: 2}
	db1, _ := New()
	db2, _ := New()
	if err := SeedScaled(db1, spec); err != nil {
		t.Fatal(err)
	}
	if err := SeedScaled(db2, spec); err != nil {
		t.Fatal(err)
	}
	for _, rel := range db1.Names() {
		a := db1.MustRelation(rel).All()
		b := db2.MustRelation(rel).All()
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d rows", rel, len(a), len(b))
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("%s row %d differs", rel, i)
			}
		}
	}
}
