package university

import (
	"penguin/internal/structural"
	"penguin/internal/viewobject"
)

// Omega builds the paper's course-information object ω (Figure 2(c)):
// pivot COURSES with components DEPARTMENT, CURRICULUM, GRADES, and
// STUDENT (under GRADES), complexity 5. Projections follow the figure:
// every node keeps the attributes the running example uses.
func Omega(g *structural.Graph) (*viewobject.Definition, error) {
	return viewobject.Define(g, "omega", Courses, viewobject.DefaultMetric(),
		map[string][]string{
			Courses:    {"CourseID", "Title", "DeptName", "Units", "Level"},
			Department: {"DeptName", "Building"},
			Curriculum: {"DeptName", "Degree", "CourseID"},
			Grades:     {"CourseID", "PID", "Quarter", "Grade"},
			Student:    {"PID", "Degree", "Year"},
		})
}

// MustOmega is Omega that panics on error (fixtures and benches).
func MustOmega(g *structural.Graph) *viewobject.Definition {
	d, err := Omega(g)
	if err != nil {
		panic(err)
	}
	return d
}

// OmegaPrime builds the alternate object ω′ of Figure 3: still anchored
// on COURSES but including only FACULTY and STUDENT. Both components
// attach through multi-connection paths, because the intermediate
// relations are excluded from the configuration: STUDENT through GRADES
// (COURSES --* GRADES inv(--*) STUDENT, the two-connection path the
// figure's caption calls out) and FACULTY through DEPARTMENT and PEOPLE.
func OmegaPrime(g *structural.Graph) (*viewobject.Definition, error) {
	sub, err := viewobject.ExtractSubgraph(g, Courses, viewobject.DefaultMetric())
	if err != nil {
		return nil, err
	}
	tree := viewobject.BuildTree(sub)
	// "FACULTY" addresses the shallowest occurrence, the one under
	// DEPARTMENT-PEOPLE, giving the three-connection path
	// COURSES --> DEPARTMENT inv(-->) PEOPLE --) FACULTY; "STUDENT"
	// addresses the occurrence under GRADES, giving the figure's
	// two-connection path COURSES --* GRADES inv(--*) STUDENT.
	return tree.Configure("omega-prime", map[string][]string{
		Courses: {"CourseID", "Title", "DeptName", "Units", "Level"},
		Faculty: {"PID", "Rank", "Tenured"},
		Student: {"PID", "Degree", "Year"},
	})
}

// MustOmegaPrime is OmegaPrime that panics on error.
func MustOmegaPrime(g *structural.Graph) *viewobject.Definition {
	d, err := OmegaPrime(g)
	if err != nil {
		panic(err)
	}
	return d
}
