package vupdate_test

import (
	"errors"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	. "penguin/internal/vupdate"
)

// fixture builds the seeded university, ω, and a permissive updater.
func fixture(t *testing.T) (*reldb.Database, *structural.Graph, *viewobject.Definition, *Updater) {
	t.Helper()
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	u := NewUpdater(PermissiveTranslator(om))
	return db, g, om, u
}

func s(v string) reldb.Value { return reldb.String(v) }
func iv(v int64) reldb.Value { return reldb.Int(v) }
func auditClean(t *testing.T, db *reldb.Database, g *structural.Graph) {
	t.Helper()
	in := &structural.Integrity{G: g}
	vs, err := in.Audit(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("integrity violations after update:\n%s", structural.FormatViolations(vs))
	}
}

// VO-CD on CS345: the pivot tuple and its GRADES go; CURRICULUM rows
// referencing CS345 are updated (deleted — their foreign key is part of
// their key); STUDENT and DEPARTMENT survive.
func TestVOCDDeletesIslandAndPeninsula(t *testing.T) {
	db, g, _, u := fixture(t)
	res, err := u.DeleteByKey(reldb.Tuple{s("CS345")})
	if err != nil {
		t.Fatal(err)
	}
	if db.MustRelation(university.Courses).Has(reldb.Tuple{s("CS345")}) {
		t.Fatal("pivot tuple survived")
	}
	grades, _ := db.MustRelation(university.Grades).MatchEqual([]string{"CourseID"}, reldb.Tuple{s("CS345")})
	if len(grades) != 0 {
		t.Fatalf("island GRADES survived: %v", grades)
	}
	curr, _ := db.MustRelation(university.Curriculum).MatchEqual([]string{"CourseID"}, reldb.Tuple{s("CS345")})
	if len(curr) != 0 {
		t.Fatalf("peninsula rows still reference CS345: %v", curr)
	}
	// Non-island data survives.
	if db.MustRelation(university.Student).Count() != 5 {
		t.Fatal("students were deleted")
	}
	if db.MustRelation(university.Department).Count() != 3 {
		t.Fatal("departments were deleted")
	}
	// 1 course + 3 grades + 2 curriculum rows.
	if got := res.Count(OpDelete); got != 6 {
		t.Fatalf("deletes = %d, want 6\n%s", got, res)
	}
	if got := res.Count(OpInsert) + res.Count(OpReplace); got != 0 {
		t.Fatalf("unexpected non-delete ops:\n%s", res)
	}
	auditClean(t, db, g)
}

func TestVOCDNotAllowed(t *testing.T) {
	db, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.AllowDeletion = false
	u := NewUpdater(tr)
	before := db.TotalRows()
	_, err := u.DeleteByKey(reldb.Tuple{s("CS345")})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
	if db.TotalRows() != before {
		t.Fatal("rejected deletion mutated the database")
	}
}

// §5.1: "In a case where replacements are not allowed on any of the
// referencing peninsulas, the transaction cannot be completed and has to
// be rolled back."
func TestVOCDPeninsulaRestrictRollsBack(t *testing.T) {
	db, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.Peninsula[university.Curriculum] = PeninsulaPolicy{AllowUpdateOnDelete: false}
	u := NewUpdater(tr)
	before := db.TotalRows()
	_, err := u.DeleteByKey(reldb.Tuple{s("CS345")})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
	if db.TotalRows() != before {
		t.Fatal("rolled-back deletion left changes")
	}
	if !db.MustRelation(university.Courses).Has(reldb.Tuple{s("CS345")}) {
		t.Fatal("pivot gone despite rollback")
	}
}

// A course no peninsula references deletes fine under the restrictive
// peninsula policy.
func TestVOCDRestrictOnlyBitesWhenReferenced(t *testing.T) {
	db, g, om, _ := fixture(t)
	// CS445 is referenced by curriculum (PhD). Remove that row first so
	// the restrictive policy has nothing to restrict.
	err := db.RunInTx(func(tx *reldb.Tx) error {
		_, err := tx.Delete(university.Curriculum, reldb.Tuple{s("Computer Science"), s("PhD"), s("CS445")})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := PermissiveTranslator(om)
	tr.Peninsula[university.Curriculum] = PeninsulaPolicy{AllowUpdateOnDelete: false}
	u := NewUpdater(tr)
	if _, err := u.DeleteByKey(reldb.Tuple{s("CS445")}); err != nil {
		t.Fatalf("unreferenced delete failed: %v", err)
	}
	auditClean(t, db, g)
}

func TestVOCDMissingInstance(t *testing.T) {
	_, _, _, u := fixture(t)
	_, err := u.DeleteByKey(reldb.Tuple{s("NOPE")})
	if !errors.Is(err, reldb.ErrNoSuchTuple) {
		t.Fatalf("err = %v", err)
	}
}

func TestVOCDDeleteInstanceAPI(t *testing.T) {
	db, g, om, u := fixture(t)
	inst, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{s("EE201")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if _, err := u.DeleteInstance(inst); err != nil {
		t.Fatal(err)
	}
	if db.MustRelation(university.Courses).Has(reldb.Tuple{s("EE201")}) {
		t.Fatal("EE201 survived")
	}
	auditClean(t, db, g)
	// Deleting the same instance again: pivot is gone.
	if _, err := u.DeleteInstance(inst); !errors.Is(err, reldb.ErrNoSuchTuple) {
		t.Fatalf("second delete err = %v", err)
	}
	// Instance of the wrong object.
	op := university.MustOmegaPrime(g)
	other, ok, err := viewobject.InstantiateByKey(db, op, reldb.Tuple{s("CS101")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if _, err := u.DeleteInstance(other); err == nil {
		t.Fatal("foreign instance accepted")
	}
}

// Peninsula set-null policy: referencing tuples keep their keys and null
// their FK. Build a schema where the FK is a non-key attribute.
func TestVOCDPeninsulaSetNull(t *testing.T) {
	db := reldb.NewDatabase()
	db.MustCreateRelation(reldb.MustSchema("HUB", []reldb.Attribute{
		{Name: "ID", Type: reldb.KindString},
		{Name: "Label", Type: reldb.KindString, Nullable: true},
	}, []string{"ID"}))
	db.MustCreateRelation(reldb.MustSchema("SPOKE", []reldb.Attribute{
		{Name: "SID", Type: reldb.KindInt},
		{Name: "HubID", Type: reldb.KindString, Nullable: true},
	}, []string{"SID"}))
	g := structural.NewGraph(db)
	g.MustAddConnection(&structural.Connection{
		Name: "spoke-hub", Type: structural.Reference,
		From: "SPOKE", To: "HUB",
		FromAttrs: []string{"HubID"}, ToAttrs: []string{"ID"},
	})
	err := db.RunInTx(func(tx *reldb.Tx) error {
		_ = tx.Insert("HUB", reldb.Tuple{s("h1"), s("hub one")})
		_ = tx.Insert("SPOKE", reldb.Tuple{iv(1), s("h1")})
		return tx.Insert("SPOKE", reldb.Tuple{iv(2), s("h1")})
	})
	if err != nil {
		t.Fatal(err)
	}
	def, err := viewobject.Define(g, "hub", "HUB", viewobject.DefaultMetric(), map[string][]string{
		"SPOKE": nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := PermissiveTranslator(def)
	if tr.Peninsula["SPOKE"].OnDelete != PeninsulaSetNull {
		t.Fatalf("default SPOKE action = %v, want set-null (FK outside key)", tr.Peninsula["SPOKE"].OnDelete)
	}
	u := NewUpdater(tr)
	res, err := u.DeleteByKey(reldb.Tuple{s("h1")})
	if err != nil {
		t.Fatal(err)
	}
	if db.MustRelation("SPOKE").Count() != 2 {
		t.Fatal("set-null should keep spokes")
	}
	got, _ := db.MustRelation("SPOKE").Get(reldb.Tuple{iv(1)})
	if !got[1].IsNull() {
		t.Fatalf("FK not nulled: %v", got)
	}
	if res.Count(OpReplace) != 2 || res.Count(OpDelete) != 1 {
		t.Fatalf("ops: %s", res)
	}
	in := &structural.Integrity{G: g}
	if vs, _ := in.Audit(db); len(vs) != 0 {
		t.Fatalf("violations: %s", structural.FormatViolations(vs))
	}
}

// Peninsula replace-default policy rewrites the FK to a DBA-chosen value.
func TestVOCDPeninsulaReplaceDefault(t *testing.T) {
	db, g, om, _ := fixture(t)
	_ = g
	tr := PermissiveTranslator(om)
	// Redirect curriculum rows of a deleted course to CS101.
	tr.Peninsula[university.Curriculum] = PeninsulaPolicy{
		AllowUpdateOnDelete: true,
		OnDelete:            PeninsulaReplaceDefault,
		Default:             reldb.Tuple{s("CS101")},
	}
	u := NewUpdater(tr)
	if _, err := u.DeleteByKey(reldb.Tuple{s("CS445")}); err != nil {
		t.Fatal(err)
	}
	// The PhD/CS445 row became PhD/CS101.
	if !db.MustRelation(university.Curriculum).Has(reldb.Tuple{s("Computer Science"), s("PhD"), s("CS101")}) {
		t.Fatal("default replacement missing")
	}
	auditClean(t, db, g)
}

func TestVOCDPeninsulaDefaultArityChecked(t *testing.T) {
	_, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.Peninsula[university.Curriculum] = PeninsulaPolicy{
		AllowUpdateOnDelete: true,
		OnDelete:            PeninsulaReplaceDefault,
		Default:             reldb.Tuple{s("CS101"), s("extra")},
	}
	u := NewUpdater(tr)
	if _, err := u.DeleteByKey(reldb.Tuple{s("CS445")}); err == nil {
		t.Fatal("bad default arity accepted")
	}
}

// Deleting a department through a DEPARTMENT-pivot object cascades into
// its owned curriculum, updates people and courses referencing it, and
// cascades across ownership chains outside the object.
func TestVOCDDeepCascadeOutsideObject(t *testing.T) {
	db, g := university.MustNewSeeded()
	def, err := viewobject.Define(g, "dept", university.Department, viewobject.DefaultMetric(),
		map[string][]string{university.Curriculum: nil})
	if err != nil {
		t.Fatal(err)
	}
	u := NewUpdater(PermissiveTranslator(def))
	res, err := u.DeleteByKey(reldb.Tuple{s("Mechanical Engineering")})
	if err != nil {
		t.Fatal(err)
	}
	// ME's course ME301 referenced the department with a key FK? No:
	// COURSES.DeptName is a non-key nullable attribute, so the default
	// action nulls it; PEOPLE.DeptName likewise.
	me301, _ := db.MustRelation(university.Courses).Get(reldb.Tuple{s("ME301")})
	if !me301[2].IsNull() {
		t.Fatalf("ME301 DeptName = %v, want null", me301[2])
	}
	bob, _ := db.MustRelation(university.People).Get(reldb.Tuple{iv(2)})
	if !bob[2].IsNull() {
		t.Fatalf("Bob's DeptName = %v, want null", bob[2])
	}
	// The ME curriculum row (owned) is gone.
	rows, _ := db.MustRelation(university.Curriculum).MatchEqual([]string{"DeptName"}, reldb.Tuple{s("Mechanical Engineering")})
	if len(rows) != 0 {
		t.Fatal("owned curriculum rows survived")
	}
	if res.Count(OpDelete) < 2 {
		t.Fatalf("ops:\n%s", res)
	}
	auditClean(t, db, g)
}
