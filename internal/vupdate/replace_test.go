package vupdate_test

import (
	"errors"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	. "penguin/internal/vupdate"
)

// currentInstance fetches the live instance for a pivot key.
func currentInstance(t *testing.T, db *reldb.Database, om *viewobject.Definition, key string) *viewobject.Instance {
	t.Helper()
	inst, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{s(key)})
	if err != nil || !ok {
		t.Fatalf("instance %s: %v %v", key, ok, err)
	}
	return inst
}

// CASE R-2: non-key replacement on the pivot.
func TestVORNonKeyReplace(t *testing.T) {
	db, g, om, u := fixture(t)
	old := currentInstance(t, db, om, "CS345")
	repl := old.Clone()
	if err := repl.Root().SetAttr(om, "Title", s("Advanced Database Systems")); err != nil {
		t.Fatal(err)
	}
	res, err := u.ReplaceInstance(old, repl)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := db.MustRelation(university.Courses).Get(reldb.Tuple{s("CS345")})
	if got[1].MustString() != "Advanced Database Systems" {
		t.Fatalf("title = %v", got[1])
	}
	if res.Count(OpReplace) != 1 || res.Count(OpInsert) != 0 || res.Count(OpDelete) != 0 {
		t.Fatalf("ops:\n%s", res)
	}
	auditClean(t, db, g)
}

// CASE R-1: identical instances translate to zero operations.
func TestVORIdenticalNoOps(t *testing.T) {
	db, _, om, u := fixture(t)
	old := currentInstance(t, db, om, "CS345")
	res, err := u.ReplaceInstance(old, old.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != 0 {
		t.Fatalf("identical replacement produced ops:\n%s", res)
	}
}

// The §6 example: replacing ω's CS345 instance with an EES345 instance in
// the (nonexistent) department "Engineering Economic Systems". Under the
// permissive translator this leads, among other things, to the insertion
// of ⟨Engineering Economic Systems⟩ into DEPARTMENT.
func TestVORSection6Example(t *testing.T) {
	db, g, om, u := fixture(t)
	old := currentInstance(t, db, om, "CS345")
	repl := old.Clone()
	// New pivot key and new department.
	if err := repl.Root().SetAttr(om, "CourseID", s("EES345")); err != nil {
		t.Fatal(err)
	}
	if err := repl.Root().SetAttr(om, "DeptName", s("Engineering Economic Systems")); err != nil {
		t.Fatal(err)
	}
	dep := repl.Root().Children(university.Department)[0]
	if err := dep.SetTuple(om, reldb.Tuple{s("Engineering Economic Systems"), reldb.Null(), reldb.Null()}); err != nil {
		t.Fatal(err)
	}
	// GRADES and CURRICULUM components: leave them; the island key
	// propagation (step 1) and the peninsula FK propagation (step 3)
	// rewrite them.
	res, err := u.ReplaceInstance(old, repl)
	if err != nil {
		t.Fatal(err)
	}

	courses := db.MustRelation(university.Courses)
	if courses.Has(reldb.Tuple{s("CS345")}) {
		t.Fatal("old pivot key survived")
	}
	ees, ok := courses.Get(reldb.Tuple{s("EES345")})
	if !ok {
		t.Fatal("new pivot key missing")
	}
	if ees[2].MustString() != "Engineering Economic Systems" {
		t.Fatalf("course dept = %v", ees[2])
	}
	// The paper's highlighted effect: a ⟨Engineering Economic Systems⟩
	// tuple was inserted in DEPARTMENT.
	if !db.MustRelation(university.Department).Has(reldb.Tuple{s("Engineering Economic Systems")}) {
		t.Fatal("EES department not inserted")
	}
	// And Computer Science remains (rule 2: insertion, not replacement).
	if !db.MustRelation(university.Department).Has(reldb.Tuple{s("Computer Science")}) {
		t.Fatal("old department was removed")
	}
	// Island propagation: the three grades moved to EES345.
	grades := db.MustRelation(university.Grades)
	moved, _ := grades.MatchEqual([]string{"CourseID"}, reldb.Tuple{s("EES345")})
	if len(moved) != 3 {
		t.Fatalf("grades under new key = %d, want 3", len(moved))
	}
	stale, _ := grades.MatchEqual([]string{"CourseID"}, reldb.Tuple{s("CS345")})
	if len(stale) != 0 {
		t.Fatalf("grades left under old key: %v", stale)
	}
	// Peninsula propagation: curriculum rows follow the key.
	curr := db.MustRelation(university.Curriculum)
	movedCurr, _ := curr.MatchEqual([]string{"CourseID"}, reldb.Tuple{s("EES345")})
	if len(movedCurr) != 2 {
		t.Fatalf("curriculum rows under new key = %d, want 2", len(movedCurr))
	}
	if res.Count(OpInsert) != 1 { // the EES department
		t.Fatalf("inserts = %d, want 1\n%s", res.Count(OpInsert), res)
	}
	auditClean(t, db, g)
}

// The §6 restrictive translator: answering NO to "Can the relation
// DEPARTMENT be modified during insertions (or replacements)?" makes the
// same replacement request fail, "since the application is not allowed to
// insert tuples in DEPARTMENT."
func TestVORSection6RestrictiveTranslator(t *testing.T) {
	db, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.Outside[university.Department] = OutsidePolicy{Modifiable: false}
	u := NewUpdater(tr)
	old := currentInstance(t, db, om, "CS345")
	repl := old.Clone()
	_ = repl.Root().SetAttr(om, "CourseID", s("EES345"))
	_ = repl.Root().SetAttr(om, "DeptName", s("Engineering Economic Systems"))
	dep := repl.Root().Children(university.Department)[0]
	_ = dep.SetTuple(om, reldb.Tuple{s("Engineering Economic Systems"), reldb.Null(), reldb.Null()})
	before := db.TotalRows()
	_, err := u.ReplaceInstance(old, repl)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
	if db.TotalRows() != before {
		t.Fatal("rolled-back replacement left changes")
	}
	if !db.MustRelation(university.Courses).Has(reldb.Tuple{s("CS345")}) {
		t.Fatal("rollback did not restore the pivot")
	}
}

func TestVORNotAllowed(t *testing.T) {
	db, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.AllowReplacement = false
	u := NewUpdater(tr)
	old := currentInstance(t, db, om, "CS345")
	if _, err := u.ReplaceInstance(old, old.Clone()); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

// Island key modification disallowed: the dialog's first island question
// answered NO.
func TestVORIslandKeyModForbidden(t *testing.T) {
	db, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	p := tr.Island[university.Courses]
	p.AllowKeyModification = false
	tr.Island[university.Courses] = p
	u := NewUpdater(tr)
	old := currentInstance(t, db, om, "CS345")
	repl := old.Clone()
	_ = repl.Root().SetAttr(om, "CourseID", s("EES345"))
	if _, err := u.ReplaceInstance(old, repl); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	// Second island question answered NO.
	tr2 := PermissiveTranslator(om)
	p2 := tr2.Island[university.Courses]
	p2.AllowDBKeyReplace = false
	tr2.Island[university.Courses] = p2
	u2 := NewUpdater(tr2)
	if _, err := u2.ReplaceInstance(old, repl); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

// R-3 merge case: the new key already exists in the database. The
// permissive translator answers NO to the merge question (as in §6), so
// the request is rejected; flipping it to YES deletes the old tuple and
// the existing tuple absorbs the new values.
func TestVORMergeWithExisting(t *testing.T) {
	db, g, om, _ := fixture(t)
	old := currentInstance(t, db, om, "CS445")
	repl := old.Clone()
	_ = repl.Root().SetAttr(om, "CourseID", s("CS101")) // CS101 exists

	u := NewUpdater(PermissiveTranslator(om))
	if _, err := u.ReplaceInstance(old, repl); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection (merge not allowed)", err)
	}

	tr := PermissiveTranslator(om)
	p := tr.Island[university.Courses]
	p.AllowMergeWithExisting = true
	tr.Island[university.Courses] = p
	// The merged grades collide with existing CS101 grades for the same
	// students; allow the GRADES merge as well.
	pg := tr.Island[university.Grades]
	pg.AllowMergeWithExisting = true
	tr.Island[university.Grades] = pg
	u2 := NewUpdater(tr)
	if _, err := u2.ReplaceInstance(old, repl); err != nil {
		t.Fatal(err)
	}
	if db.MustRelation(university.Courses).Has(reldb.Tuple{s("CS445")}) {
		t.Fatal("old tuple survived the merge")
	}
	got, _ := db.MustRelation(university.Courses).Get(reldb.Tuple{s("CS101")})
	// CS445's projected values were absorbed.
	if got[1].MustString() != "Distributed Systems" {
		t.Fatalf("absorbed title = %v", got[1])
	}
	auditClean(t, db, g)
}

// Island key change on a non-pivot island node: replacing a grade's
// student (PID is part of GRADES' key complement).
func TestVORIslandChildKeyChange(t *testing.T) {
	db, g, om, u := fixture(t)
	old := currentInstance(t, db, om, "CS445")
	repl := old.Clone()
	// Move the grade of student 5 to student 3 and also change the mark.
	for _, gr := range repl.Root().Children(university.Grades) {
		if gr.Tuple()[1].MustInt() == 5 {
			if err := gr.SetTuple(om, reldb.Tuple{s("CS445"), iv(3), s("Spr91"), s("A-")}); err != nil {
				t.Fatal(err)
			}
			// The STUDENT child below follows.
			st := gr.Children(university.Student)[0]
			if err := st.SetTuple(om, reldb.Tuple{iv(3), s("MS"), iv(2)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := u.ReplaceInstance(old, repl); err != nil {
		t.Fatal(err)
	}
	grades := db.MustRelation(university.Grades)
	if grades.Has(reldb.Tuple{s("CS445"), iv(5)}) {
		t.Fatal("old grade survived")
	}
	got, ok := grades.Get(reldb.Tuple{s("CS445"), iv(3)})
	if !ok || got[3].MustString() != "A-" {
		t.Fatalf("new grade = %v, %v", got, ok)
	}
	auditClean(t, db, g)
}

// Adding and removing island components through a replacement: a new
// grade appears, an old one disappears.
func TestVORAddAndRemoveIslandComponents(t *testing.T) {
	db, g, om, u := fixture(t)
	old := currentInstance(t, db, om, "CS445")
	repl := old.Clone()
	// Remove the grade of student 5 by rebuilding the instance without it.
	rebuilt := viewobject.MustNewInstance(om, repl.Root().Tuple())
	for _, cid := range []string{university.Department, university.Curriculum} {
		for _, c := range repl.Root().Children(cid) {
			rebuilt.Root().MustAddChild(om, cid, c.Tuple())
		}
	}
	for _, gr := range repl.Root().Children(university.Grades) {
		if gr.Tuple()[1].MustInt() == 5 {
			continue // dropped
		}
		n := rebuilt.Root().MustAddChild(om, university.Grades, gr.Tuple())
		for _, st := range gr.Children(university.Student) {
			n.MustAddChild(om, university.Student, st.Tuple())
		}
	}
	// Add a new grade for student 2.
	ng := rebuilt.Root().MustAddChild(om, university.Grades,
		reldb.Tuple{s("CS445"), iv(2), s("Spr91"), s("B+")})
	ng.MustAddChild(om, university.Student, reldb.Tuple{iv(2), s("MS"), iv(1)})

	res, err := u.ReplaceInstance(old, rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	grades := db.MustRelation(university.Grades)
	if grades.Has(reldb.Tuple{s("CS445"), iv(5)}) {
		t.Fatal("removed grade survived")
	}
	got, ok := grades.Get(reldb.Tuple{s("CS445"), iv(2)})
	if !ok || got[3].MustString() != "B+" {
		t.Fatalf("added grade = %v, %v", got, ok)
	}
	// The remove+add pair collapses into a single key replacement — the
	// paper's own simplification ("If we have a deletion followed by an
	// insertion, we perform a replacement instead").
	if len(res.Ops) != 1 || res.Count(OpReplace) != 1 {
		t.Fatalf("ops:\n%s", res)
	}
	auditClean(t, db, g)
}

// User-requested key changes on peninsulas are prohibited (§5.3).
func TestVORPeninsulaKeyChangeRejected(t *testing.T) {
	db, _, om, u := fixture(t)
	old := currentInstance(t, db, om, "CS345")
	repl := old.Clone()
	// Change a curriculum row's Degree (part of its key, not the FK).
	cu := repl.Root().Children(university.Curriculum)[0]
	tu := cu.Tuple()
	tu[1] = s("MBA")
	if err := cu.SetTuple(om, tu); err != nil {
		t.Fatal(err)
	}
	if _, err := u.ReplaceInstance(old, repl); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
}

// Key changes on plain outside relations are precluded (§5.3).
func TestVOROutsideKeyChangeRejected(t *testing.T) {
	db, _, om, u := fixture(t)
	old := currentInstance(t, db, om, "CS345")
	repl := old.Clone()
	// Change a student's PID (its key): STUDENT is an outside relation.
	gr := repl.Root().Children(university.Grades)[0]
	st := gr.Children(university.Student)[0]
	tu := st.Tuple()
	tu[0] = iv(999)
	if err := st.SetTuple(om, tu); err != nil {
		t.Fatal(err)
	}
	if _, err := u.ReplaceInstance(old, repl); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
}

// Non-key changes on outside relations follow the outside policy (R-2).
func TestVOROutsideNonKeyReplace(t *testing.T) {
	db, g, om, u := fixture(t)
	old := currentInstance(t, db, om, "CS345")
	repl := old.Clone()
	gr := repl.Root().Children(university.Grades)[0]
	st := gr.Children(university.Student)[0]
	pid := st.Tuple()[0]
	if err := st.SetAttr(om, "Year", iv(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := u.ReplaceInstance(old, repl); err != nil {
		t.Fatal(err)
	}
	got, _ := db.MustRelation(university.Student).Get(reldb.Tuple{pid})
	if y, _ := got[2].AsInt(); y != 4 {
		t.Fatalf("year = %v", got[2])
	}
	auditClean(t, db, g)

	// The same change is rejected when STUDENT is not modifiable.
	tr := PermissiveTranslator(om)
	tr.Outside[university.Student] = OutsidePolicy{Modifiable: false}
	u2 := NewUpdater(tr)
	old2 := currentInstance(t, db, om, "CS345")
	repl2 := old2.Clone()
	gr2 := repl2.Root().Children(university.Grades)[0]
	st2 := gr2.Children(university.Student)[0]
	_ = st2.SetAttr(om, "Year", iv(5))
	if _, err := u2.ReplaceInstance(old2, repl2); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

// Stale request: the pivot tuple was deleted between instantiation and
// replacement.
func TestVORStaleInstance(t *testing.T) {
	db, _, om, u := fixture(t)
	old := currentInstance(t, db, om, "CS345")
	if _, err := u.DeleteByKey(reldb.Tuple{s("CS345")}); err != nil {
		t.Fatal(err)
	}
	repl := old.Clone()
	_ = repl.Root().SetAttr(om, "Title", s("Ghost"))
	if _, err := u.ReplaceInstance(old, repl); !errors.Is(err, reldb.ErrNoSuchTuple) {
		t.Fatalf("err = %v", err)
	}
	_ = db
}

func TestVORWrongDefinitionRejected(t *testing.T) {
	db, g, om, u := fixture(t)
	op := university.MustOmegaPrime(g)
	other, ok, err := viewobject.InstantiateByKey(db, op, reldb.Tuple{s("CS101")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	old := currentInstance(t, db, om, "CS101")
	if _, err := u.ReplaceInstance(old, other); err == nil {
		t.Fatal("foreign new instance accepted")
	}
	if _, err := u.ReplaceInstance(other, old); err == nil {
		t.Fatal("foreign old instance accepted")
	}
}

// The replacement leaves the caller's new instance untouched (it is
// cloned before propagation).
func TestVORDoesNotMutateCallerInstance(t *testing.T) {
	db, _, om, u := fixture(t)
	old := currentInstance(t, db, om, "CS345")
	repl := old.Clone()
	_ = repl.Root().SetAttr(om, "CourseID", s("EES345"))
	_ = repl.Root().SetAttr(om, "DeptName", s("Engineering Economic Systems"))
	dep := repl.Root().Children(university.Department)[0]
	_ = dep.SetTuple(om, reldb.Tuple{s("Engineering Economic Systems"), reldb.Null(), reldb.Null()})
	// Grades in repl still carry CS345; propagation must not leak back.
	if _, err := u.ReplaceInstance(old, repl); err != nil {
		t.Fatal(err)
	}
	for _, gr := range repl.Root().Children(university.Grades) {
		if gr.Tuple()[0].MustString() != "CS345" {
			t.Fatal("caller's instance was mutated by propagation")
		}
	}
	_ = db
}
