package vupdate

import (
	"penguin/internal/viewobject"
)

// validateConnections is the structural part of local validation (step 1
// of §5): within the instance, every child component linked to its parent
// by a single connection must actually be connected — the values of the
// connecting attributes must match. A mismatch means the request is
// internally inconsistent (for example, a STUDENT component whose PID
// differs from its GRADES parent's PID) and is rejected before any
// translation happens. Children attached through multi-connection paths
// (excluded intermediate relations) cannot be checked without the
// intermediate tuples and are skipped.
func validateConnections(def *viewobject.Definition, in *viewobject.InstNode) error {
	node := in.Node()
	parentSchema := def.NodeSchema(node)
	parentTuple := in.Tuple()
	for _, child := range node.Children {
		kids := in.Children(child.ID)
		if len(kids) == 0 {
			continue
		}
		if len(child.Path) == 1 {
			e := child.Path[0]
			srcIdx, err := parentSchema.Indices(e.SourceAttrs())
			if err != nil {
				return err
			}
			childSchema := def.NodeSchema(child)
			tgtIdx, err := childSchema.Indices(e.TargetAttrs())
			if err != nil {
				return err
			}
			for _, ci := range kids {
				ct := ci.Tuple()
				for k := range srcIdx {
					pv := parentTuple[srcIdx[k]]
					cv := ct[tgtIdx[k]]
					if pv.IsNull() {
						return rejectAs(ReasonIntegrity, "vupdate: %s: component %s cannot be connected: parent %s has null %s",
							def.Name, child.ID, node.ID, e.SourceAttrs()[k])
					}
					if !pv.Equal(cv) {
						return rejectAs(ReasonIntegrity, "vupdate: %s: component %s (%s) is not connected to its parent %s (%s=%s, %s=%s)",
							def.Name, child.ID, ct, node.ID,
							e.SourceAttrs()[k], pv, e.TargetAttrs()[k], cv)
					}
				}
			}
		}
		for _, ci := range kids {
			if err := validateConnections(def, ci); err != nil {
				return err
			}
		}
	}
	return nil
}
