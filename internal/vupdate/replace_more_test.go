package vupdate_test

import (
	"errors"
	"strings"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	. "penguin/internal/vupdate"
)

// A replacement that only ADDS components (no removals): the unpaired new
// subtrees are inserted with VO-CI semantics, including their children.
func TestVORAddsNewSubtrees(t *testing.T) {
	db, g, om, u := fixture(t)
	old := currentInstance(t, db, om, "ME301")
	repl := old.Clone()
	// Add a new grade with its student subtree.
	gr := repl.Root().MustAddChild(om, university.Grades,
		reldb.Tuple{s("ME301"), iv(3), s("Win91"), s("B+")})
	gr.MustAddChild(om, university.Student, reldb.Tuple{iv(3), s("MS"), iv(2)})
	// Add a new curriculum row (outside component).
	repl.Root().MustAddChild(om, university.Curriculum,
		reldb.Tuple{s("Mechanical Engineering"), s("MS"), s("ME301")})

	res, err := u.ReplaceInstance(old, repl)
	if err != nil {
		t.Fatal(err)
	}
	if !db.MustRelation(university.Grades).Has(reldb.Tuple{s("ME301"), iv(3)}) {
		t.Fatal("added grade missing")
	}
	if !db.MustRelation(university.Curriculum).Has(reldb.Tuple{s("Mechanical Engineering"), s("MS"), s("ME301")}) {
		t.Fatal("added curriculum row missing")
	}
	// grade + curriculum inserted; the existing STUDENT(3) is CASE 1.
	if res.Count(OpInsert) != 2 {
		t.Fatalf("ops:\n%s", res)
	}
	auditClean(t, db, g)
}

// Adding an outside component during replacement respects the outside
// insert permission.
func TestVORAddOutsideComponentGated(t *testing.T) {
	db, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.Outside[university.Curriculum] = OutsidePolicy{Modifiable: true, AllowInsert: false, AllowModifyExisting: true}
	u := NewUpdater(tr)
	old := currentInstance(t, db, om, "ME301")
	repl := old.Clone()
	repl.Root().MustAddChild(om, university.Curriculum,
		reldb.Tuple{s("Mechanical Engineering"), s("MS"), s("ME301")})
	if _, err := u.ReplaceInstance(old, repl); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

// Peninsula with non-key attributes: non-key changes on a peninsula
// component apply during a pivot key change (the FK follows in step 3,
// the payload replaces in the machine).
func TestVORPeninsulaNonKeyChangeWithKeyPropagation(t *testing.T) {
	db := reldb.NewDatabase()
	db.MustCreateRelation(reldb.MustSchema("HUB", []reldb.Attribute{
		{Name: "ID", Type: reldb.KindString},
		{Name: "Label", Type: reldb.KindString, Nullable: true},
	}, []string{"ID"}))
	db.MustCreateRelation(reldb.MustSchema("SPOKE", []reldb.Attribute{
		{Name: "SID", Type: reldb.KindInt},
		{Name: "HubID", Type: reldb.KindString, Nullable: true},
		{Name: "Note", Type: reldb.KindString, Nullable: true},
	}, []string{"SID"}))
	g := structural.NewGraph(db)
	g.MustAddConnection(&structural.Connection{
		Name: "spoke-hub", Type: structural.Reference,
		From: "SPOKE", To: "HUB",
		FromAttrs: []string{"HubID"}, ToAttrs: []string{"ID"},
	})
	err := db.RunInTx(func(tx *reldb.Tx) error {
		_ = tx.Insert("HUB", reldb.Tuple{s("h1"), s("hub")})
		return tx.Insert("SPOKE", reldb.Tuple{iv(1), s("h1"), s("old note")})
	})
	if err != nil {
		t.Fatal(err)
	}
	def, err := viewobject.Define(g, "hub", "HUB", viewobject.DefaultMetric(),
		map[string][]string{"SPOKE": nil})
	if err != nil {
		t.Fatal(err)
	}
	topo := Analyze(def)
	if topo.Class["SPOKE"] != ClassPeninsula {
		t.Fatalf("SPOKE class = %v", topo.Class["SPOKE"])
	}
	u := NewUpdater(PermissiveTranslator(def))
	old, ok, err := viewobject.InstantiateByKey(db, def, reldb.Tuple{s("h1")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	repl := old.Clone()
	_ = repl.Root().SetAttr(def, "ID", s("h2")) // pivot key change
	sp := repl.Root().Children("SPOKE")[0]
	_ = sp.SetAttr(def, "Note", s("new note")) // peninsula non-key change
	if _, err := u.ReplaceInstance(old, repl); err != nil {
		t.Fatal(err)
	}
	got, _ := db.MustRelation("SPOKE").Get(reldb.Tuple{iv(1)})
	if got[1].MustString() != "h2" {
		t.Fatalf("FK = %v, want h2", got[1])
	}
	if got[2].MustString() != "new note" {
		t.Fatalf("note = %v", got[2])
	}
	in := &structural.Integrity{G: g}
	if vs, _ := in.Audit(db); len(vs) != 0 {
		t.Fatalf("violations: %s", structural.FormatViolations(vs))
	}

	// A peninsula payload change is rejected when the translator freezes
	// the relation.
	tr2 := PermissiveTranslator(def)
	tr2.Outside["SPOKE"] = OutsidePolicy{Modifiable: false}
	u2 := NewUpdater(tr2)
	old2, _, _ := viewobject.InstantiateByKey(db, def, reldb.Tuple{s("h2")})
	repl2 := old2.Clone()
	_ = repl2.Root().SetAttr(def, "ID", s("h3"))
	sp2 := repl2.Root().Children("SPOKE")[0]
	_ = sp2.SetAttr(def, "Note", s("changed again"))
	if _, err := u2.ReplaceInstance(old2, repl2); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

// Merge path where the absorbed tuple already matches the new values: the
// delete happens but no second replace is emitted.
func TestVORMergeIdenticalExisting(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	// Craft CS446 identical (in projected values) to what CS445 would
	// become after merging — title etc. match CS445's values.
	cs445, _ := db.MustRelation(university.Courses).Get(reldb.Tuple{s("CS445")})
	clone := cs445.Clone()
	clone[0] = s("CS446")
	err := db.RunInTx(func(tx *reldb.Tx) error {
		return tx.Insert(university.Courses, clone)
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := PermissiveTranslator(om)
	p := tr.Island[university.Courses]
	p.AllowMergeWithExisting = true
	tr.Island[university.Courses] = p
	pg := tr.Island[university.Grades]
	pg.AllowMergeWithExisting = true
	tr.Island[university.Grades] = pg
	u := NewUpdater(tr)

	old := currentInstance(t, db, om, "CS445")
	repl := old.Clone()
	_ = repl.Root().SetAttr(om, "CourseID", s("CS446"))
	res, err := u.ReplaceInstance(old, repl)
	if err != nil {
		t.Fatal(err)
	}
	// CS445 deleted; CS446 absorbed without a replace op on COURSES.
	if db.MustRelation(university.Courses).Has(reldb.Tuple{s("CS445")}) {
		t.Fatal("old tuple survived")
	}
	sawCoursesReplace := false
	for _, op := range res.Ops {
		if op.Kind == OpReplace && op.Relation == university.Courses {
			sawCoursesReplace = true
		}
	}
	if sawCoursesReplace {
		t.Fatalf("identical absorption should not replace:\n%s", res)
	}
	auditClean(t, db, g)
}

// Exhaustive String methods for diagnostics types.
func TestDiagnosticStrings(t *testing.T) {
	ops := []DBOp{
		{Kind: OpInsert, Relation: "R", Tuple: reldb.Tuple{iv(1)}},
		{Kind: OpDelete, Relation: "R", Key: reldb.Tuple{iv(1)}},
		{Kind: OpReplace, Relation: "R", Key: reldb.Tuple{iv(1)}, Tuple: reldb.Tuple{iv(2)}},
	}
	res := &Result{Ops: ops}
	text := res.String()
	for _, want := range []string{"insert R (1)", "delete R key (1)", "replace R key (1) with (2)"} {
		if !strings.Contains(text, want) {
			t.Errorf("Result.String missing %q:\n%s", want, text)
		}
	}
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" || OpReplace.String() != "replace" {
		t.Error("OpKind strings")
	}
	if !strings.Contains(OpKind(9).String(), "op(") {
		t.Error("unknown OpKind string")
	}
	for a, want := range map[PeninsulaAction]string{
		PeninsulaDeleteTuple: "delete-tuple", PeninsulaSetNull: "set-null",
		PeninsulaReplaceDefault: "replace-default", PeninsulaRestrict: "restrict",
	} {
		if a.String() != want {
			t.Errorf("%v.String() = %q", a, a.String())
		}
	}
	if !strings.Contains(PeninsulaAction(9).String(), "peninsulaaction") {
		t.Error("unknown PeninsulaAction string")
	}
}

// CASE I-4: a key-change pair whose new tuple exists in the database with
// conflicting values — the existing tuple's projected attributes are
// replaced.
func TestVORStateICase4ConflictingExisting(t *testing.T) {
	db, g, om, u := fixture(t)
	old := currentInstance(t, db, om, "CS445")
	repl := old.Clone()
	// Move the grade of student 5 to student 3, and claim student 3 has
	// Year 4 while the database says 2: the STUDENT pair enters state I
	// with differing keys (5 vs 3) and hits I-4.
	for _, gr := range repl.Root().Children(university.Grades) {
		if gr.Tuple()[1].MustInt() == 5 {
			if err := gr.SetTuple(om, reldb.Tuple{s("CS445"), iv(3), s("Spr91"), s("B")}); err != nil {
				t.Fatal(err)
			}
			st := gr.Children(university.Student)[0]
			if err := st.SetTuple(om, reldb.Tuple{iv(3), s("MS"), iv(4)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := u.ReplaceInstance(old, repl); err != nil {
		t.Fatal(err)
	}
	got, _ := db.MustRelation(university.Student).Get(reldb.Tuple{iv(3)})
	if y, _ := got[2].AsInt(); y != 4 {
		t.Fatalf("I-4 did not replace: year = %v", got[2])
	}
	auditClean(t, db, g)

	// The same conflict is rejected when STUDENT may not be modified.
	db2, _, om2, _ := fixtureNamed(t)
	tr := PermissiveTranslator(om2)
	tr.Outside[university.Student] = OutsidePolicy{Modifiable: true, AllowInsert: true, AllowModifyExisting: false}
	u2 := NewUpdater(tr)
	old2, ok, err := viewobject.InstantiateByKey(db2, om2, reldb.Tuple{s("CS445")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	repl2 := old2.Clone()
	for _, gr := range repl2.Root().Children(university.Grades) {
		if gr.Tuple()[1].MustInt() == 5 {
			_ = gr.SetTuple(om2, reldb.Tuple{s("CS445"), iv(3), s("Spr91"), s("B")})
			st := gr.Children(university.Student)[0]
			_ = st.SetTuple(om2, reldb.Tuple{iv(3), s("MS"), iv(4)})
		}
	}
	if _, err := u2.ReplaceInstance(old2, repl2); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

// fixtureNamed is fixture without the updater (avoids shadowing clashes).
func fixtureNamed(t *testing.T) (*reldb.Database, *structural.Graph, *viewobject.Definition, struct{}) {
	t.Helper()
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	return db, g, om, struct{}{}
}
