package vupdate

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"penguin/internal/viewobject"
)

// The translator-selection dialog (§6). The DBA enters a dialog with the
// object-definition facility; the sequence of answers to the system's
// questions defines the translator for the object at hand. Questions
// follow the object's update topology: island nodes get the key-
// replacement questions, non-island nodes the modification questions, and
// a NO on a gating question skips its sub-questions (footnote 5).

// Question is one yes/no question of the dialog.
type Question struct {
	// ID is a stable identifier, e.g. "replace.allow" or
	// "island.COURSES.keymod". Scripted answerers key on it.
	ID string
	// Text is the paper-style wording shown to the DBA.
	Text string
	// Indent nests sub-questions in rendered transcripts.
	Indent int
}

// QA records one asked question with its answer.
type QA struct {
	Question Question
	Answer   bool
}

// Transcript is the asked/answered sequence of one dialog run.
type Transcript []QA

// Render reproduces the paper's typography: the system's questions in
// plain text, the DBA's answers as <YES>/<NO>.
func (t Transcript) Render() string {
	var b strings.Builder
	for _, qa := range t {
		ans := "<NO>"
		if qa.Answer {
			ans = "<YES>"
		}
		fmt.Fprintf(&b, "%s %s\n", qa.Question.Text, ans)
	}
	return b.String()
}

// Answerer supplies answers during a dialog run.
type Answerer interface {
	// Answer returns the DBA's answer to q.
	Answer(q Question) (bool, error)
}

// ScriptedAnswerer answers from a map of question ID to answer; IDs
// absent from the map get Default. It reproduces recorded dialogs and
// powers tests and benchmarks.
type ScriptedAnswerer struct {
	Answers map[string]bool
	Default bool
}

// Answer implements Answerer.
func (s ScriptedAnswerer) Answer(q Question) (bool, error) {
	if v, ok := s.Answers[q.ID]; ok {
		return v, nil
	}
	return s.Default, nil
}

// AnswerFunc adapts a function to the Answerer interface.
type AnswerFunc func(Question) (bool, error)

// Answer implements Answerer.
func (f AnswerFunc) Answer(q Question) (bool, error) { return f(q) }

// InteractiveAnswerer conducts the dialog on a terminal: questions are
// written to W (typewriter style, as in the paper) and y/n answers read
// from R.
type InteractiveAnswerer struct {
	R io.Reader
	W io.Writer

	br *bufio.Reader
}

// Answer implements Answerer.
func (ia *InteractiveAnswerer) Answer(q Question) (bool, error) {
	if ia.br == nil {
		// Reuse an existing buffered reader so a surrounding REPL and the
		// dialog do not fight over buffered input.
		if br, ok := ia.R.(*bufio.Reader); ok {
			ia.br = br
		} else {
			ia.br = bufio.NewReader(ia.R)
		}
	}
	for {
		fmt.Fprintf(ia.W, "%s%s ", strings.Repeat("  ", q.Indent), q.Text)
		line, err := ia.br.ReadString('\n')
		if err != nil && line == "" {
			return false, fmt.Errorf("vupdate: dialog aborted: %w", err)
		}
		switch strings.ToLower(strings.TrimSpace(line)) {
		case "y", "yes":
			return true, nil
		case "n", "no":
			return false, nil
		default:
			fmt.Fprintln(ia.W, "Please answer yes or no.")
		}
	}
}

// Question IDs are built from these templates.
func qReplaceAllow() Question {
	return Question{ID: "replace.allow",
		Text: "Is replacement of tuples in an object instance allowed?"}
}
func qInsertAllow() Question {
	return Question{ID: "insert.allow",
		Text: "Is insertion of new object instances allowed?"}
}
func qDeleteAllow() Question {
	return Question{ID: "delete.allow",
		Text: "Is deletion of object instances allowed?"}
}
func qIslandKeyMod(rel string) Question {
	return Question{ID: "island." + rel + ".keymod",
		Text: fmt.Sprintf("The key of a tuple of relation %s could be modified during replacements. Do you allow this?", rel)}
}
func qIslandDBKey(rel string) Question {
	return Question{ID: "island." + rel + ".dbkey", Indent: 1,
		Text: "Can we replace the key of the corresponding database tuple?"}
}
func qIslandMerge(rel string) Question {
	return Question{ID: "island." + rel + ".merge", Indent: 1,
		Text: "The system might need to delete the old database tuple, and replace it with an existing tuple with matching key. Do you allow this?"}
}
func qOutsideModifiable(rel string) Question {
	return Question{ID: "outside." + rel + ".modifiable",
		Text: fmt.Sprintf("Can the relation %s be modified during insertions (or replacements)?", rel)}
}
func qOutsideInsert(rel string) Question {
	return Question{ID: "outside." + rel + ".insert", Indent: 1,
		Text: "Can a new tuple be inserted?"}
}
func qOutsideModify(rel string) Question {
	return Question{ID: "outside." + rel + ".modify", Indent: 1,
		Text: "Can an existing tuple be modified?"}
}
func qPeninsulaDelete(rel string) Question {
	return Question{ID: "peninsula." + rel + ".ondelete",
		Text: fmt.Sprintf("Deleting an object instance requires updating the tuples of relation %s that reference it. Do you allow this?", rel)}
}

// ChooseTranslator conducts the full translator-selection dialog for a
// view object and returns the resulting translator together with the
// transcript. The replacement portion reproduces §6's question sequence:
// the gating question, then per relation — in the node-ID order the
// paper uses (alphabetical) — either the island key questions or the
// outside modification questions, with sub-questions skipped when their
// gate is answered NO.
func ChooseTranslator(def *viewobject.Definition, a Answerer) (*Translator, Transcript, error) {
	tr := NewTranslator(def)
	var tape Transcript
	ask := func(q Question) (bool, error) {
		ans, err := a.Answer(q)
		if err != nil {
			return false, err
		}
		tape = append(tape, QA{Question: q, Answer: ans})
		return ans, nil
	}
	topo := tr.Topology()

	// Insertion portion.
	insOK, err := ask(qInsertAllow())
	if err != nil {
		return nil, tape, err
	}
	tr.AllowInsertion = insOK

	// Deletion portion: the gate, then one question per referencing
	// peninsula. The action (delete / set-null / replace-with-default)
	// defaults by key shape and can be refined on the translator.
	delOK, err := ask(qDeleteAllow())
	if err != nil {
		return nil, tape, err
	}
	tr.AllowDeletion = delOK
	if delOK {
		for _, id := range topo.Peninsulas() {
			ok, err := ask(qPeninsulaDelete(id))
			if err != nil {
				return nil, tape, err
			}
			tr.Peninsula[id] = PeninsulaPolicy{
				AllowUpdateOnDelete: ok,
				OnDelete:            tr.defaultPeninsulaAction(id),
			}
			if !ok {
				tr.Peninsula[id] = PeninsulaPolicy{AllowUpdateOnDelete: false, OnDelete: PeninsulaRestrict}
			}
		}
	}

	// Replacement portion (the part §6 prints).
	replTape, err := chooseReplacementPortion(tr, ask)
	if err != nil {
		return nil, tape, err
	}
	_ = replTape
	return tr, tape, nil
}

// ChooseReplacementTranslator runs only the replacement portion of the
// dialog — exactly the part the paper prints in §6 — on an existing
// translator, returning its transcript.
func ChooseReplacementTranslator(def *viewobject.Definition, a Answerer) (*Translator, Transcript, error) {
	tr := NewTranslator(def)
	tr.AllowInsertion = true
	tr.AllowDeletion = true
	tr.RepairInserts = true
	for _, id := range tr.Topology().Peninsulas() {
		tr.Peninsula[id] = PeninsulaPolicy{
			AllowUpdateOnDelete: true,
			OnDelete:            tr.defaultPeninsulaAction(id),
		}
	}
	var tape Transcript
	ask := func(q Question) (bool, error) {
		ans, err := a.Answer(q)
		if err != nil {
			return false, err
		}
		tape = append(tape, QA{Question: q, Answer: ans})
		return ans, nil
	}
	if _, err := chooseReplacementPortion(tr, ask); err != nil {
		return nil, tape, err
	}
	return tr, tape, nil
}

func chooseReplacementPortion(tr *Translator, ask func(Question) (bool, error)) (Transcript, error) {
	topo := tr.Topology()
	replOK, err := ask(qReplaceAllow())
	if err != nil {
		return nil, err
	}
	tr.AllowReplacement = replOK
	if !replOK {
		return nil, nil
	}
	// §6 walks the object's relations in alphabetical node-ID order:
	// COURSES, CURRICULUM, DEPARTMENT, GRADES, STUDENT for ω.
	ids := make([]string, 0, len(topo.Class))
	for id := range topo.Class {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if topo.InIsland(id) {
			keyMod, err := ask(qIslandKeyMod(id))
			if err != nil {
				return nil, err
			}
			p := IslandPolicy{AllowKeyModification: keyMod}
			if keyMod {
				// Footnote 5: sub-questions only when the gate is YES.
				if p.AllowDBKeyReplace, err = ask(qIslandDBKey(id)); err != nil {
					return nil, err
				}
				if p.AllowMergeWithExisting, err = ask(qIslandMerge(id)); err != nil {
					return nil, err
				}
			}
			tr.Island[id] = p
			continue
		}
		modifiable, err := ask(qOutsideModifiable(id))
		if err != nil {
			return nil, err
		}
		p := OutsidePolicy{Modifiable: modifiable}
		if modifiable {
			if p.AllowInsert, err = ask(qOutsideInsert(id)); err != nil {
				return nil, err
			}
			if p.AllowModifyExisting, err = ask(qOutsideModify(id)); err != nil {
				return nil, err
			}
		}
		tr.Outside[id] = p
	}
	return nil, nil
}

// PaperDialogAnswers reproduces the §6 transcript for ω: every question
// answered YES except the two merge questions (COURSES and GRADES), which
// the paper answers NO.
func PaperDialogAnswers() ScriptedAnswerer {
	return ScriptedAnswerer{
		Answers: map[string]bool{
			"island.COURSES.merge": false,
			"island.GRADES.merge":  false,
		},
		Default: true,
	}
}
