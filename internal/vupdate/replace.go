package vupdate

import (
	"fmt"
	"sort"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/viewobject"
)

// ReplaceInstance translates and executes a replacement (algorithm VO-R,
// §5.3): substituting a fully specified replacing instance for an
// existing one. The three steps of the paper run in order:
//
//  1. propagation within the view object — modified key complements of
//     dependency-island nodes propagate down to their island children
//     (the new instance is cloned first; the caller's copy is untouched);
//  2. translation — the two-state R/I machine walks the paired component
//     trees depth-first, emitting replace, insert, and delete operations
//     per the translator's island and outside policies; key replacements
//     translate to database key replacements only inside the island, a
//     key change of a referenced relation becomes an insertion (§5.3
//     rule 2, the §6 "Engineering Economic Systems" example), and
//     user-requested key changes of peninsulas or other outside relations
//     are rejected;
//  3. validation against the structural model — foreign keys of
//     referencing peninsulas (and of out-of-object referencing relations)
//     are replaced to follow island key changes, key changes propagate
//     across ownership and subset connections leaving the island, and the
//     recursive dependency repair of §5.2 runs for every tuple the
//     translation inserted or replaced.
func (u *Updater) ReplaceInstance(oldInst, newInst *viewobject.Instance) (*Result, error) {
	if err := u.checkInstance(oldInst); err != nil {
		return nil, err
	}
	if err := u.checkInstance(newInst); err != nil {
		return nil, err
	}
	return u.run(func(s *session) error {
		return s.replaceInstance(oldInst, newInst)
	})
}

// replaceInstance runs the three VO-R steps inside the session.
func (s *session) replaceInstance(oldInst, newInst *viewobject.Instance) error {
	if !s.tr.AllowReplacement {
		return reject("vupdate: %s: replacement of tuples in an object instance is not allowed", s.def.Name)
	}
	topo := s.tr.Topology()
	newInst = newInst.Clone()
	// Step 1: propagation within the view object, then local validation
	// of the propagated replacing instance.
	if err := s.step(obs.StepPropagate, func() error {
		return propagateIslandKeys(s.def, topo, newInst.Root())
	}); err != nil {
		return err
	}
	if err := s.step(obs.StepLocalValidate, func() error {
		return validateConnections(s.def, newInst.Root())
	}); err != nil {
		return err
	}
	// Step 2: translation (state machine).
	rc := &replaceCtx{
		s:      s,
		topo:   topo,
		keyMap: make(map[string]map[string]keyChange),
	}
	if err := s.step(obs.StepTranslate, func() error {
		return rc.walkPair(oldInst.Root(), newInst.Root(), stateR)
	}); err != nil {
		return err
	}
	// Step 3: validation against the structural model.
	return s.step(obs.StepGlobalValidate, func() error {
		if err := rc.propagateKeyChanges(); err != nil {
			return err
		}
		seen := make(map[string]bool)
		for _, rt := range rc.touched {
			if err := s.ensureDependencies(rt.rel, rt.tuple, seen); err != nil {
				return err
			}
		}
		return nil
	})
}

// propagateIslandKeys rewrites, throughout the dependency island of the
// (new) instance, the key attributes each child inherits from its parent
// (the complement A_j stays as given; the inherited part follows the
// parent — §5.3 "a change to A_j has to be propagated down to R_j's
// children in the dependency island"). Only single-connection island
// paths carry inherited attributes.
func propagateIslandKeys(def *viewobject.Definition, topo *Topology, in *viewobject.InstNode) error {
	node := in.Node()
	for _, child := range node.Children {
		// Island children inherit key attributes from the parent;
		// peninsula-style children (reached through a single inverse
		// reference — they reference the parent) carry a system-maintained
		// foreign key that must follow the parent's key. Both are
		// rewritten from the (new) parent tuple.
		follows := topo.InIsland(child.ID) ||
			(len(child.Path) == 1 && !child.Path[0].Forward &&
				child.Path[0].Conn.Type == structural.Reference)
		if follows && len(child.Path) == 1 {
			e := child.Path[0]
			parentSchema := def.NodeSchema(node)
			childSchema := def.NodeSchema(child)
			srcIdx, err := parentSchema.Indices(e.SourceAttrs())
			if err != nil {
				return err
			}
			tgtIdx, err := childSchema.Indices(e.TargetAttrs())
			if err != nil {
				return err
			}
			parentTuple := in.Tuple()
			for _, ci := range in.Children(child.ID) {
				nt := ci.Tuple()
				for k, j := range tgtIdx {
					nt[j] = parentTuple[srcIdx[k]]
				}
				if err := ci.SetTuple(def, nt); err != nil {
					return err
				}
			}
		}
		for _, ci := range in.Children(child.ID) {
			if err := propagateIslandKeys(def, topo, ci); err != nil {
				return err
			}
		}
	}
	return nil
}

// machine states of algorithm VO-R.
type voState uint8

const (
	stateR voState = iota // replacing: aligned with existing data
	stateI                // inserting: the subtree is new data
)

type keyChange struct {
	oldKey reldb.Tuple
	newKey reldb.Tuple
}

type replaceCtx struct {
	s    *session
	topo *Topology
	// keyMap records island key replacements: relation → encoded old key
	// → change. Used for peninsula foreign-key propagation and for the
	// outward ownership/subset propagation of step 3.
	keyMap  map[string]map[string]keyChange
	touched []relTuple
}

func (rc *replaceCtx) recordKeyChange(rel string, oldKey, newKey reldb.Tuple) {
	m := rc.keyMap[rel]
	if m == nil {
		m = make(map[string]keyChange)
		rc.keyMap[rel] = m
	}
	m[reldb.EncodeValues(oldKey...)] = keyChange{oldKey: oldKey.Clone(), newKey: newKey.Clone()}
}

// walkPair processes one paired component (old, new) and recurses into
// the paired children.
func (rc *replaceCtx) walkPair(oldIn, newIn *viewobject.InstNode, state voState) error {
	node := newIn.Node()
	schema := rc.s.schemaOf(node)
	ot, nt := oldIn.Tuple(), newIn.Tuple()
	oldKey, newKey := schema.KeyOf(ot), schema.KeyOf(nt)

	// CASE I-1: in state I with matching keys, go to state R staying
	// with this tuple.
	if state == stateI && oldKey.Equal(newKey) {
		state = stateR
	}
	var err error
	switch {
	case rc.topo.Class[node.ID] == ClassPeninsula:
		// Peninsula components are handled uniformly in either state:
		// their foreign keys are system-maintained (step 3), their other
		// key attributes are frozen, and non-key changes replace.
		err = rc.handlePeninsula(node, schema, ot, nt)
	case state == stateR:
		err = rc.handleR(node, schema, ot, nt)
	default:
		err = rc.handleI(node, schema, ot, nt)
	}
	if err != nil {
		return err
	}
	return rc.walkChildren(oldIn, newIn, state)
}

// walkChildren pairs the two components' children per child node and
// recurses; unpaired new children become insertions, unpaired old
// children inside the island become deletions.
func (rc *replaceCtx) walkChildren(oldIn, newIn *viewobject.InstNode, state voState) error {
	node := newIn.Node()
	for _, child := range node.Children {
		// Moving to the next relation down: state I outside the island,
		// state R inside (from state R); state I stays I.
		childState := stateI
		if state == stateR && rc.topo.InIsland(child.ID) {
			childState = stateR
		}
		oldKids := oldIn.Children(child.ID)
		newKids := newIn.Children(child.ID)
		pairs, unpairedOld, unpairedNew := rc.pairKids(child, oldKids, newKids)
		for _, p := range pairs {
			if err := rc.walkPair(p[0], p[1], childState); err != nil {
				return err
			}
		}
		for _, n := range unpairedNew {
			if err := rc.insertSubtree(n); err != nil {
				return err
			}
		}
		for _, o := range unpairedOld {
			if rc.topo.InIsland(child.ID) {
				if err := rc.s.deleteCascade(child.Relation, o.Tuple(), map[string]bool{}); err != nil {
					return err
				}
			}
			// Components outside the island are not owned by the object:
			// dropping them from the instance does not delete base data.
		}
	}
	return nil
}

// pairKids aligns old and new child components. Island children linked by
// a single connection pair on their key complement (the part of the key
// not inherited from the parent), so a parent key change still pairs the
// corresponding children; everything else pairs on the full key, with
// leftovers paired positionally.
func (rc *replaceCtx) pairKids(child *viewobject.Node, oldKids, newKids []*viewobject.InstNode) (
	pairs [][2]*viewobject.InstNode, unpairedOld, unpairedNew []*viewobject.InstNode) {

	schema := rc.s.schemaOf(child)
	extractor := schema.Key()
	if rc.topo.InIsland(child.ID) && len(child.Path) == 1 {
		inherited := make(map[int]bool)
		if idx, err := schema.Indices(child.Path[0].TargetAttrs()); err == nil {
			for _, j := range idx {
				inherited[j] = true
			}
		}
		var complement []int
		for _, k := range schema.Key() {
			if !inherited[k] {
				complement = append(complement, k)
			}
		}
		if len(complement) > 0 {
			extractor = complement
		}
	}
	keyOf := func(in *viewobject.InstNode) string {
		return in.Tuple().Project(extractor).Encode()
	}
	oldByKey := make(map[string][]*viewobject.InstNode)
	var oldOrder []string
	for _, o := range oldKids {
		k := keyOf(o)
		if _, seen := oldByKey[k]; !seen {
			oldOrder = append(oldOrder, k)
		}
		oldByKey[k] = append(oldByKey[k], o)
	}
	var leftoverNew []*viewobject.InstNode
	for _, n := range newKids {
		k := keyOf(n)
		if olds := oldByKey[k]; len(olds) > 0 {
			pairs = append(pairs, [2]*viewobject.InstNode{olds[0], n})
			oldByKey[k] = olds[1:]
		} else {
			leftoverNew = append(leftoverNew, n)
		}
	}
	var leftoverOld []*viewobject.InstNode
	for _, k := range oldOrder {
		leftoverOld = append(leftoverOld, oldByKey[k]...)
	}
	// Positional pairing of leftovers: these are the key-change pairs.
	m := len(leftoverOld)
	if len(leftoverNew) < m {
		m = len(leftoverNew)
	}
	for i := 0; i < m; i++ {
		pairs = append(pairs, [2]*viewobject.InstNode{leftoverOld[i], leftoverNew[i]})
	}
	unpairedOld = leftoverOld[m:]
	unpairedNew = leftoverNew[m:]
	sort.SliceStable(pairs, func(a, b int) bool {
		return pairs[a][1].Tuple().Encode() < pairs[b][1].Tuple().Encode()
	})
	return pairs, unpairedOld, unpairedNew
}

// handleR implements the three R-cases for one tuple pair.
func (rc *replaceCtx) handleR(node *viewobject.Node, schema *reldb.Schema, ot, nt reldb.Tuple) error {
	projIdx, err := schema.Indices(node.Attrs)
	if err != nil {
		return err
	}
	if projectedEqual(ot, nt, projIdx) {
		return nil // CASE R-1: the projections match exactly.
	}
	oldKey, newKey := schema.KeyOf(ot), schema.KeyOf(nt)
	if oldKey.Equal(newKey) {
		// CASE R-2: the projections differ but the keys match.
		return rc.replaceSameKey(node, schema, oldKey, nt, projIdx)
	}
	// CASE R-3: the projections differ and the keys differ.
	switch rc.topo.Class[node.ID] {
	case ClassPivot, ClassIsland:
		return rc.replaceIslandKey(node, schema, ot, nt, projIdx)
	case ClassReferenced:
		// §5.3 rule 2: a permitted key replacement of a referenced
		// relation leads to an insertion, not a replacement.
		return rc.insertOrMendOutside(node, schema, nt, projIdx)
	case ClassPeninsula:
		return rc.peninsulaKeyChange(node, schema, ot, nt, projIdx)
	default:
		return rejectAs(ReasonAmbiguousKey, "vupdate: %s: changes to the key of %s tuples are precluded (outside relation)",
			rc.s.def.Name, node.ID)
	}
}

// handleI implements cases I-2, I-3, and I-4 (I-1 switches to state R in
// walkPair before reaching here; keys are known to differ).
func (rc *replaceCtx) handleI(node *viewobject.Node, schema *reldb.Schema, _, nt reldb.Tuple) error {
	return rc.insertOrMendOutside(node, schema, nt, nil)
}

// insertOrMendOutside inserts nt if its key is free (I-2), does nothing
// if an identical tuple exists (I-3), and replaces the existing tuple's
// projected attributes when values conflict (I-4).
func (rc *replaceCtx) insertOrMendOutside(node *viewobject.Node, schema *reldb.Schema, nt reldb.Tuple, projIdx []int) error {
	if projIdx == nil {
		var err error
		projIdx, err = schema.Indices(node.Attrs)
		if err != nil {
			return err
		}
	}
	rel, err := rc.s.relation(node.Relation)
	if err != nil {
		return err
	}
	if err := schema.CheckTuple(nt); err != nil {
		return fmt.Errorf("vupdate: %s: component %s: %w", rc.s.def.Name, node.ID, err)
	}
	key := schema.KeyOf(nt)
	existing, exists := rel.Get(key)
	p := rc.s.tr.outsidePolicy(node.ID)
	switch {
	case !exists:
		// CASE I-2: insert.
		if !p.Modifiable || !p.AllowInsert {
			return reject("vupdate: %s: the application is not allowed to insert tuples in %s",
				rc.s.def.Name, node.Relation)
		}
		if err := rc.s.insert(node.Relation, nt); err != nil {
			return err
		}
		rc.touched = append(rc.touched, relTuple{node.Relation, nt})
		return nil
	case projectedEqual(nt, existing, projIdx):
		// CASE I-3: already present.
		return nil
	default:
		// CASE I-4: conflicting values.
		if !p.Modifiable || !p.AllowModifyExisting {
			return reject("vupdate: %s: the application is not allowed to modify tuples of %s",
				rc.s.def.Name, node.Relation)
		}
		merged := existing.Clone()
		for _, j := range projIdx {
			merged[j] = nt[j]
		}
		if err := rc.s.replace(node.Relation, key, merged); err != nil {
			return err
		}
		rc.touched = append(rc.touched, relTuple{node.Relation, merged})
		return nil
	}
}

// replaceSameKey merges the new projected attributes into the database
// tuple carrying the (unchanged) key.
func (rc *replaceCtx) replaceSameKey(node *viewobject.Node, schema *reldb.Schema, key reldb.Tuple, nt reldb.Tuple, projIdx []int) error {
	if !rc.topo.InIsland(node.ID) {
		p := rc.s.tr.outsidePolicy(node.ID)
		if !p.Modifiable || !p.AllowModifyExisting {
			return reject("vupdate: %s: the application is not allowed to modify tuples of %s",
				rc.s.def.Name, node.Relation)
		}
	}
	rel, err := rc.s.relation(node.Relation)
	if err != nil {
		return err
	}
	existing, ok := rel.Get(key)
	if !ok {
		return fmt.Errorf("vupdate: %s: %s tuple %s no longer exists: %w",
			rc.s.def.Name, node.ID, key, reldb.ErrNoSuchTuple)
	}
	merged := existing.Clone()
	for _, j := range projIdx {
		merged[j] = nt[j]
	}
	if merged.Equal(existing) {
		return nil
	}
	if err := rc.s.replace(node.Relation, key, merged); err != nil {
		return err
	}
	rc.touched = append(rc.touched, relTuple{node.Relation, merged})
	return nil
}

// replaceIslandKey performs CASE R-3 inside the dependency island: a
// literal database key replacement, gated by the translator's island
// policy. When a tuple with the new key already exists, the old tuple is
// deleted and the existing tuple absorbs the new values — but only when
// the DBA allowed the merge (the paper's third island dialog question).
func (rc *replaceCtx) replaceIslandKey(node *viewobject.Node, schema *reldb.Schema, ot, nt reldb.Tuple, projIdx []int) error {
	policy := rc.s.tr.islandPolicy(node.ID)
	if !policy.AllowKeyModification {
		return reject("vupdate: %s: modifying the key of %s tuples during replacements is not allowed",
			rc.s.def.Name, node.ID)
	}
	if !policy.AllowDBKeyReplace {
		return reject("vupdate: %s: replacing the key of %s database tuples is not allowed",
			rc.s.def.Name, node.ID)
	}
	rel, err := rc.s.relation(node.Relation)
	if err != nil {
		return err
	}
	if err := schema.CheckTuple(nt); err != nil {
		return fmt.Errorf("vupdate: %s: component %s: %w", rc.s.def.Name, node.ID, err)
	}
	oldKey, newKey := schema.KeyOf(ot), schema.KeyOf(nt)
	existingOld, ok := rel.Get(oldKey)
	if !ok {
		return fmt.Errorf("vupdate: %s: %s tuple %s no longer exists: %w",
			rc.s.def.Name, node.ID, oldKey, reldb.ErrNoSuchTuple)
	}
	merged := existingOld.Clone()
	for _, j := range projIdx {
		merged[j] = nt[j]
	}
	if existingNew, clash := rel.Get(newKey); clash {
		// A tuple with the new key already exists: delete the old tuple
		// and replace the existing one (simpler than delete+insert, as
		// the paper notes), if allowed.
		if !policy.AllowMergeWithExisting {
			return rejectAs(ReasonConflict, "vupdate: %s: replacing %s key %s would require deleting the old tuple and adopting the existing tuple with key %s, which is not allowed",
				rc.s.def.Name, node.ID, oldKey, newKey)
		}
		if err := rc.s.delete(node.Relation, oldKey); err != nil {
			return err
		}
		mergedExisting := existingNew.Clone()
		for _, j := range projIdx {
			mergedExisting[j] = nt[j]
		}
		if !mergedExisting.Equal(existingNew) {
			if err := rc.s.replace(node.Relation, newKey, mergedExisting); err != nil {
				return err
			}
		}
		rc.recordKeyChange(node.Relation, oldKey, newKey)
		rc.touched = append(rc.touched, relTuple{node.Relation, mergedExisting})
		return nil
	}
	if err := rc.s.replace(node.Relation, oldKey, merged); err != nil {
		return err
	}
	rc.recordKeyChange(node.Relation, oldKey, newKey)
	rc.touched = append(rc.touched, relTuple{node.Relation, merged})
	return nil
}

// handlePeninsula processes one peninsula component pair: identical
// projections are a no-op, an unchanged key with differing values is a
// plain replacement, and a key difference goes through the propagation
// check below.
func (rc *replaceCtx) handlePeninsula(node *viewobject.Node, schema *reldb.Schema, ot, nt reldb.Tuple) error {
	projIdx, err := schema.Indices(node.Attrs)
	if err != nil {
		return err
	}
	if projectedEqual(ot, nt, projIdx) {
		return nil
	}
	oldKey, newKey := schema.KeyOf(ot), schema.KeyOf(nt)
	if oldKey.Equal(newKey) {
		return rc.replaceSameKey(node, schema, oldKey, nt, projIdx)
	}
	return rc.peninsulaKeyChange(node, schema, ot, nt, projIdx)
}

// peninsulaKeyChange validates a key difference on a referencing
// peninsula: the only permitted difference is the system's own
// foreign-key propagation from an island key change (applied in step 3);
// any further key change is inherently ambiguous and rejected (§5.3).
// Non-key projected differences are applied as a normal replacement.
func (rc *replaceCtx) peninsulaKeyChange(node *viewobject.Node, schema *reldb.Schema, ot, nt reldb.Tuple, projIdx []int) error {
	expected := rc.applyKeyMapToRefs(node.Relation, ot)
	if !schema.KeyOf(expected).Equal(schema.KeyOf(nt)) {
		return rejectAs(ReasonAmbiguousKey, "vupdate: %s: replacements on keys of referencing peninsula %s are prohibited",
			rc.s.def.Name, node.ID)
	}
	// Non-key attribute changes apply to the database tuple now (it still
	// carries the old foreign key; step 3 rewrites it).
	merged := ot.Clone()
	changed := false
	for _, j := range projIdx {
		if schema.IsKeyAttr(j) {
			continue
		}
		if !merged[j].Equal(nt[j]) {
			merged[j] = nt[j]
			changed = true
		}
	}
	if !changed {
		return nil
	}
	p := rc.s.tr.outsidePolicy(node.ID)
	if !p.Modifiable || !p.AllowModifyExisting {
		return reject("vupdate: %s: the application is not allowed to modify tuples of %s",
			rc.s.def.Name, node.Relation)
	}
	if err := rc.s.replace(node.Relation, schema.KeyOf(ot), merged); err != nil {
		return err
	}
	rc.touched = append(rc.touched, relTuple{node.Relation, merged})
	return nil
}

// applyKeyMapToRefs rewrites the referencing attributes of a peninsula
// tuple according to the island key changes recorded so far.
func (rc *replaceCtx) applyKeyMapToRefs(relName string, t reldb.Tuple) reldb.Tuple {
	out := t.Clone()
	rel, err := rc.s.relation(relName)
	if err != nil {
		return out
	}
	schema := rel.Schema()
	for _, c := range rc.s.g.Outgoing(relName) {
		if c.Type != structural.Reference {
			continue
		}
		changes := rc.keyMap[c.To]
		if len(changes) == 0 {
			continue
		}
		idx, err := schema.Indices(c.FromAttrs)
		if err != nil {
			continue
		}
		fk := out.Project(idx)
		if ch, ok := changes[reldb.EncodeValues(fk...)]; ok {
			for i, j := range idx {
				out[j] = ch.newKey[i]
			}
		}
	}
	return out
}

// insertSubtree inserts a new component and its descendants using the
// VO-CI cases (an unpaired new component is new data by definition).
func (rc *replaceCtx) insertSubtree(in *viewobject.InstNode) error {
	t, err := rc.s.insertComponent(rc.topo, in.Node(), in.Tuple())
	if err != nil {
		return err
	}
	if t != nil {
		rc.touched = append(rc.touched, relTuple{in.Node().Relation, t})
	}
	for _, child := range in.Node().Children {
		for _, ci := range in.Children(child.ID) {
			if err := rc.insertSubtree(ci); err != nil {
				return err
			}
		}
	}
	return nil
}

// propagateKeyChanges is step 3's structural propagation: for every
// island key replacement, foreign keys of referencing tuples are replaced
// to the new key, and the change cascades across ownership and subset
// connections to tuples still carrying the old key (relations attached to
// the island from outside the object).
func (rc *replaceCtx) propagateKeyChanges() error {
	rels := make([]string, 0, len(rc.keyMap))
	for rel := range rc.keyMap {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, relName := range rels {
		changes := rc.keyMap[relName]
		encs := make([]string, 0, len(changes))
		for enc := range changes {
			encs = append(encs, enc)
		}
		sort.Strings(encs)
		for _, enc := range encs {
			ch := changes[enc]
			if err := rc.propagateOneKeyChange(relName, ch); err != nil {
				return err
			}
		}
	}
	return nil
}

func (rc *replaceCtx) propagateOneKeyChange(relName string, ch keyChange) error {
	rel, err := rc.s.relation(relName)
	if err != nil {
		return err
	}
	schema := rel.Schema()
	keyIdx := schema.Key()
	keyAttrs := make([]string, len(keyIdx))
	for i, j := range keyIdx {
		keyAttrs[i] = schema.Attr(j).Name
	}
	// Incoming references: rewrite foreign keys old → new.
	for _, c := range rc.s.g.Incoming(relName) {
		if c.Type != structural.Reference {
			continue
		}
		fromRel, err := rc.s.relation(c.From)
		if err != nil {
			return err
		}
		fromSchema := fromRel.Schema()
		fkIdx, err := fromSchema.Indices(c.FromAttrs)
		if err != nil {
			return err
		}
		// Referenced attributes are the key (Definition 2.3): project the
		// old key values into the reference's attribute order.
		refVals, err := projectKeyVals(schema, c.ToAttrs, ch.oldKey, keyAttrs)
		if err != nil {
			return err
		}
		newVals, err := projectKeyVals(schema, c.ToAttrs, ch.newKey, keyAttrs)
		if err != nil {
			return err
		}
		refs, err := fromRel.MatchEqual(c.FromAttrs, refVals)
		if err != nil {
			return err
		}
		if len(refs) > 0 {
			if err := rc.checkFKRewriteAllowed(c.From); err != nil {
				return err
			}
		}
		for _, rt := range refs {
			nt := rt.Clone()
			for i, j := range fkIdx {
				nt[j] = newVals[i]
			}
			if err := rc.s.replace(c.From, fromSchema.KeyOf(rt), nt); err != nil {
				return err
			}
			rc.touched = append(rc.touched, relTuple{c.From, nt})
		}
	}
	// Outgoing ownership and subset connections: tuples still connected
	// to the old key follow it (out-of-object dependents; in-object
	// island children were already replaced by the state machine).
	for _, c := range rc.s.g.Outgoing(relName) {
		if c.Type != structural.Ownership && c.Type != structural.Subset {
			continue
		}
		toRel, err := rc.s.relation(c.To)
		if err != nil {
			return err
		}
		toSchema := toRel.Schema()
		tgtIdx, err := toSchema.Indices(c.ToAttrs)
		if err != nil {
			return err
		}
		oldVals, err := projectKeyVals(schema, c.FromAttrs, ch.oldKey, keyAttrs)
		if err != nil {
			return err
		}
		newVals, err := projectKeyVals(schema, c.FromAttrs, ch.newKey, keyAttrs)
		if err != nil {
			return err
		}
		deps, err := toRel.MatchEqual(c.ToAttrs, oldVals)
		if err != nil {
			return err
		}
		for _, dt := range deps {
			nt := dt.Clone()
			for i, j := range tgtIdx {
				nt[j] = newVals[i]
			}
			oldDepKey := toSchema.KeyOf(dt)
			newDepKey := toSchema.KeyOf(nt)
			if err := rc.s.replace(c.To, oldDepKey, nt); err != nil {
				return err
			}
			rc.touched = append(rc.touched, relTuple{c.To, nt})
			if !oldDepKey.Equal(newDepKey) {
				// The dependent's own key changed: recurse.
				if err := rc.propagateOneKeyChange(c.To, keyChange{oldKey: oldDepKey, newKey: newDepKey}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkFKRewriteAllowed gates foreign-key propagation on relations that
// are peninsula nodes of the object by their outside policy; relations
// outside the object are system-maintained and always allowed.
func (rc *replaceCtx) checkFKRewriteAllowed(relName string) error {
	for _, id := range rc.topo.Peninsulas() {
		n, _ := rc.s.def.Node(id)
		if n.Relation != relName {
			continue
		}
		p := rc.s.tr.outsidePolicy(id)
		if !p.Modifiable || !p.AllowModifyExisting {
			return reject("vupdate: %s: key propagation must modify %s, which the translator does not allow",
				rc.s.def.Name, relName)
		}
		return nil
	}
	return nil
}

// projectKeyVals maps key values (in canonical key order, labeled by
// keyAttrs) into the order of the connection attribute list attrs.
func projectKeyVals(schema *reldb.Schema, attrs []string, key reldb.Tuple, keyAttrs []string) (reldb.Tuple, error) {
	out := make(reldb.Tuple, len(attrs))
	for i, a := range attrs {
		found := false
		for k, ka := range keyAttrs {
			if ka == a {
				out[i] = key[k]
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("vupdate: connection attribute %s of %s is not a key attribute",
				a, schema.Name())
		}
	}
	return out, nil
}
