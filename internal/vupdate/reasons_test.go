package vupdate

import (
	"errors"
	"fmt"
	"testing"

	"penguin/internal/obs"
	"penguin/internal/reldb"
)

// The Reason constants index obs.Registry.Rejects; the slug table lives
// in obs (so snapshots render without importing vupdate). This test is
// the alignment contract between the two packages.
func TestReasonNamesAlignWithObs(t *testing.T) {
	if int(numReasons) != obs.NumRejectReasons {
		t.Fatalf("vupdate defines %d reasons, obs sizes counters for %d", numReasons, obs.NumRejectReasons)
	}
	want := map[Reason]string{
		ReasonUnknown:          "unknown",
		ReasonNoInstance:       "no-instance",
		ReasonTranslatorPolicy: "translator-policy",
		ReasonIntegrity:        "integrity",
		ReasonAmbiguousKey:     "ambiguous-key",
		ReasonConflict:         "conflict",
	}
	if len(want) != int(numReasons) {
		t.Fatalf("test covers %d reasons, package defines %d", len(want), numReasons)
	}
	for r, slug := range want {
		if r.String() != slug {
			t.Errorf("Reason(%d).String() = %q, want %q", r, r.String(), slug)
		}
	}
}

// OpKind values index obs.Registry.Ops; snapshot keys must match the
// kinds' own names.
func TestOpKindsAlignWithObs(t *testing.T) {
	if obs.NumOpKinds != 3 {
		t.Fatalf("obs.NumOpKinds = %d, want 3", obs.NumOpKinds)
	}
	r := obs.NewRegistry()
	for _, k := range []OpKind{OpInsert, OpDelete, OpReplace} {
		r.Ops[k].Inc()
		key := "vupdate.ops." + k.String()
		if got := r.Snapshot().Counter(key); got != 1 {
			t.Errorf("after Ops[%s].Inc(): snapshot %s = %d, want 1", k, key, got)
		}
	}
}

// Every tagged rejection must keep satisfying errors.Is(err, ErrRejected)
// and keep the historical message format — typed reasons are an addition,
// not a breaking change.
func TestRejectionWrapsErrRejected(t *testing.T) {
	for r := ReasonUnknown; r < numReasons; r++ {
		err := rejectAs(r, "vupdate: X: context %d", int(r))
		if !errors.Is(err, ErrRejected) {
			t.Errorf("rejectAs(%s) does not wrap ErrRejected", r)
		}
		if got := ReasonOf(err); got != r {
			t.Errorf("ReasonOf(rejectAs(%s)) = %s", r, got)
		}
		want := fmt.Sprintf("vupdate: X: context %d: view-object update rejected by translator", int(r))
		if err.Error() != want {
			t.Errorf("message = %q, want %q", err.Error(), want)
		}
	}
}

func TestReasonOfClassification(t *testing.T) {
	// The default reject() is a translator-policy rejection.
	if got := ReasonOf(reject("vupdate: X: not allowed")); got != ReasonTranslatorPolicy {
		t.Errorf("ReasonOf(reject(...)) = %s, want translator-policy", got)
	}
	// A wrapped rejection keeps its reason through fmt.Errorf layers.
	wrapped := fmt.Errorf("outer: %w", rejectAs(ReasonConflict, "inner"))
	if got := ReasonOf(wrapped); got != ReasonConflict {
		t.Errorf("ReasonOf(wrapped) = %s, want conflict", got)
	}
	// Missing tuples classify as no-instance even without ErrRejected.
	missing := fmt.Errorf("vupdate: X: no instance: %w", reldb.ErrNoSuchTuple)
	if got := ReasonOf(missing); got != ReasonNoInstance {
		t.Errorf("ReasonOf(ErrNoSuchTuple) = %s, want no-instance", got)
	}
	// A bare ErrRejected wrap (no Rejection value) is unknown.
	bare := fmt.Errorf("legacy: %w", ErrRejected)
	if got := ReasonOf(bare); got != ReasonUnknown {
		t.Errorf("ReasonOf(bare wrap) = %s, want unknown", got)
	}
	// Infrastructure errors are unknown too; callers gate on errors.Is.
	if got := ReasonOf(errors.New("disk on fire")); got != ReasonUnknown {
		t.Errorf("ReasonOf(other) = %s, want unknown", got)
	}
}
