package vupdate

import (
	"fmt"

	"penguin/internal/reldb"
	"penguin/internal/structural"
)

// ensureDependencies implements the recursive global-consistency check of
// §5.2: after a tuple is inserted (or replaced with referencing attributes
// involved), the relations along inverse ownership, inverse subset, and
// forward reference connections must hold the tuples the structural model
// requires. Missing dependency tuples are inserted — minimally: key
// attributes take the connecting values, every other attribute is null —
// and the check recurses into each repair insertion.
//
// Repairs are gated: a relation that is a node of the view object needs
// its policy's insert permission (island nodes are implicitly permitted);
// any other relation needs the translator's RepairInserts flag.
func (s *session) ensureDependencies(relName string, tuple reldb.Tuple, seen map[string]bool) error {
	rel, err := s.relation(relName)
	if err != nil {
		return err
	}
	ek := relName + "\x00" + rel.Schema().EncodeKeyOf(tuple)
	if seen[ek] {
		return nil
	}
	seen[ek] = true

	// Inverse ownership and inverse subset: an owning or generalizing
	// tuple must exist.
	for _, c := range s.g.Incoming(relName) {
		if c.Type != structural.Ownership && c.Type != structural.Subset {
			continue
		}
		e := structural.Edge{Conn: c, Forward: false}
		owners, err := structural.ConnectedVia(s.tx, e, tuple)
		if err != nil {
			return err
		}
		if owners == nil {
			return fmt.Errorf("vupdate: %s tuple %s has null connecting values for %s",
				relName, tuple, c)
		}
		if len(owners) > 0 {
			continue
		}
		if err := s.repairInsert(c.From, e, tuple, seen); err != nil {
			return err
		}
	}
	// Forward references: the referenced tuple must exist (or the
	// referencing attributes are null).
	for _, c := range s.g.Outgoing(relName) {
		if c.Type != structural.Reference {
			continue
		}
		e := structural.Edge{Conn: c, Forward: true}
		targets, err := structural.ConnectedVia(s.tx, e, tuple)
		if err != nil {
			return err
		}
		if targets == nil || len(targets) > 0 {
			continue // null reference, or satisfied
		}
		if err := s.repairInsert(c.To, e, tuple, seen); err != nil {
			return err
		}
	}
	return nil
}

// repairInsert inserts the minimal dependency tuple of relation target
// required by edge e from the source tuple, then recurses.
func (s *session) repairInsert(target string, e structural.Edge, source reldb.Tuple, seen map[string]bool) error {
	if err := s.checkRepairAllowed(target); err != nil {
		return err
	}
	tgtRel, err := s.relation(target)
	if err != nil {
		return err
	}
	srcRel, err := s.relation(e.Source())
	if err != nil {
		return err
	}
	srcIdx, err := srcRel.Schema().Indices(e.SourceAttrs())
	if err != nil {
		return err
	}
	tgtIdx, err := tgtRel.Schema().Indices(e.TargetAttrs())
	if err != nil {
		return err
	}
	nt := make(reldb.Tuple, tgtRel.Schema().Arity())
	for i, j := range tgtIdx {
		nt[j] = source[srcIdx[i]]
	}
	if err := tgtRel.Schema().CheckTuple(nt); err != nil {
		return fmt.Errorf("vupdate: cannot construct minimal %s dependency tuple: %w", target, err)
	}
	if err := s.insert(target, nt); err != nil {
		return err
	}
	return s.ensureDependencies(target, nt, seen)
}

// checkRepairAllowed verifies the translator permits inserting dependency
// tuples into relName.
func (s *session) checkRepairAllowed(relName string) error {
	topo := s.tr.Topology()
	for _, n := range s.def.Nodes() {
		if n.Relation != relName {
			continue
		}
		if topo.InIsland(n.ID) {
			return nil
		}
		p := s.tr.outsidePolicy(n.ID)
		if p.Modifiable && p.AllowInsert {
			return nil
		}
		return reject("vupdate: %s: the application is not allowed to insert tuples in %s",
			s.def.Name, relName)
	}
	if !s.tr.RepairInserts {
		return reject("vupdate: %s: dependency repair would insert into %s, which the translator does not allow",
			s.def.Name, relName)
	}
	return nil
}
