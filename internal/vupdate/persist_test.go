package vupdate_test

import (
	"bytes"
	"strings"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/university"
	. "penguin/internal/vupdate"
)

func TestTranslatorSaveLoadRoundTrip(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	orig, _, err := ChooseTranslator(om, PaperDialogAnswers())
	if err != nil {
		t.Fatal(err)
	}
	orig.RepairInserts = true
	orig.Peninsula[university.Curriculum] = PeninsulaPolicy{
		AllowUpdateOnDelete: true,
		OnDelete:            PeninsulaReplaceDefault,
		Default:             reldb.Tuple{reldb.String("CS101")},
	}

	var buf bytes.Buffer
	if err := orig.SavePolicies(&buf); err != nil {
		t.Fatal(err)
	}
	// Rebind against a fresh definition (a restart).
	_, g2 := university.New()
	om2 := university.MustOmega(g2)
	loaded, err := LoadTranslator(om2, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.AllowInsertion != orig.AllowInsertion ||
		loaded.AllowDeletion != orig.AllowDeletion ||
		loaded.AllowReplacement != orig.AllowReplacement ||
		loaded.RepairInserts != orig.RepairInserts {
		t.Fatal("gates differ after round trip")
	}
	for id, p := range orig.Island {
		if loaded.Island[id] != p {
			t.Fatalf("island policy %s differs: %+v vs %+v", id, loaded.Island[id], p)
		}
	}
	for id, p := range orig.Outside {
		if loaded.Outside[id] != p {
			t.Fatalf("outside policy %s differs", id)
		}
	}
	lp := loaded.Peninsula[university.Curriculum]
	if lp.OnDelete != PeninsulaReplaceDefault || !lp.AllowUpdateOnDelete {
		t.Fatalf("peninsula policy = %+v", lp)
	}
	if len(lp.Default) != 1 || !lp.Default[0].Equal(reldb.String("CS101")) {
		t.Fatalf("peninsula default = %v", lp.Default)
	}
}

func TestLoadedTranslatorDrivesUpdates(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	orig, _, err := ChooseTranslator(om, PaperDialogAnswers())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SavePolicies(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTranslator(om, &buf)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUpdater(loaded)
	if _, err := u.DeleteByKey(reldb.Tuple{s("CS445")}); err != nil {
		t.Fatal(err)
	}
	if db.MustRelation(university.Courses).Has(reldb.Tuple{s("CS445")}) {
		t.Fatal("delete under loaded translator failed")
	}
}

func TestLoadTranslatorValidation(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	op := university.MustOmegaPrime(g)
	orig := PermissiveTranslator(om)
	var buf bytes.Buffer
	if err := orig.SavePolicies(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	// Wrong object.
	if _, err := LoadTranslator(op, strings.NewReader(saved)); err == nil {
		t.Fatal("loading ω's translator into ω′ accepted")
	}
	// Corrupt JSON.
	if _, err := LoadTranslator(om, strings.NewReader(saved[:20])); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	// Unknown node in island policies.
	doc := strings.Replace(saved, `"COURSES"`, `"NOPE"`, 1)
	if _, err := LoadTranslator(om, strings.NewReader(doc)); err == nil {
		t.Fatal("unknown island node accepted")
	}
	// Unknown peninsula action.
	bad := strings.Replace(saved, `"delete-tuple"`, `"explode"`, 1)
	if _, err := LoadTranslator(om, strings.NewReader(bad)); err == nil {
		t.Fatal("unknown action accepted")
	}
}
