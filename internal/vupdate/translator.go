package vupdate

import (
	"fmt"

	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/viewobject"
)

// IslandPolicy answers, for one dependency-island node, the replacement
// questions of the §6 dialog.
type IslandPolicy struct {
	// AllowKeyModification permits the key of a tuple of this relation to
	// be modified during replacements (first island question).
	AllowKeyModification bool
	// AllowDBKeyReplace permits replacing the key of the corresponding
	// database tuple (second island question).
	AllowDBKeyReplace bool
	// AllowMergeWithExisting permits deleting the old database tuple and
	// replacing an existing tuple carrying the new key (third island
	// question — the paper's "delete the old database tuple, and replace
	// it with an existing tuple with matching key").
	AllowMergeWithExisting bool
}

// OutsidePolicy answers, for one non-island node, the insertion/replacement
// questions of the §6 dialog.
type OutsidePolicy struct {
	// Modifiable permits this relation to be modified during insertions
	// or replacements at all. When false the two sub-permissions are
	// irrelevant (footnote 5 of the paper).
	Modifiable bool
	// AllowInsert permits inserting a new tuple.
	AllowInsert bool
	// AllowModifyExisting permits replacing an existing tuple.
	AllowModifyExisting bool
}

// PeninsulaAction selects how a complete deletion updates the tuples of a
// referencing peninsula that pointed at deleted island tuples ("perform a
// replacement on the foreign key of each matching tuple", §5.1). The
// replacement value is translator configuration: the paper leaves it to
// the DBA-chosen translator.
type PeninsulaAction uint8

// Peninsula actions.
const (
	// PeninsulaDeleteTuple removes the referencing tuples. It is the
	// default when the foreign key participates in the peninsula's
	// primary key (a null or default value would corrupt the key).
	PeninsulaDeleteTuple PeninsulaAction = iota
	// PeninsulaSetNull assigns null to the referencing attributes.
	PeninsulaSetNull
	// PeninsulaReplaceDefault assigns the policy's default values to the
	// referencing attributes.
	PeninsulaReplaceDefault
	// PeninsulaRestrict rejects the deletion (the transaction rolls
	// back, §5.1).
	PeninsulaRestrict
)

// String implements fmt.Stringer.
func (a PeninsulaAction) String() string {
	switch a {
	case PeninsulaDeleteTuple:
		return "delete-tuple"
	case PeninsulaSetNull:
		return "set-null"
	case PeninsulaReplaceDefault:
		return "replace-default"
	case PeninsulaRestrict:
		return "restrict"
	default:
		return fmt.Sprintf("peninsulaaction(%d)", uint8(a))
	}
}

// PeninsulaPolicy configures deletion-time handling of one referencing
// peninsula.
type PeninsulaPolicy struct {
	// AllowUpdateOnDelete permits the system to touch the peninsula when
	// an instance is deleted; when false, deletions whose island tuples
	// are referenced roll back.
	AllowUpdateOnDelete bool
	// OnDelete is the chosen action.
	OnDelete PeninsulaAction
	// Default supplies the replacement values for PeninsulaReplaceDefault,
	// one per referencing attribute of the peninsula's reference
	// connection into the island.
	Default reldb.Tuple
}

// Translator is the update-translation policy for one view object, fixed
// at definition time (by dialog or programmatically) and applied to every
// subsequent update request. The zero policy rejects everything; use
// PermissiveTranslator or ChooseTranslator to build one.
type Translator struct {
	topo *Topology

	// AllowInsertion, AllowDeletion, and AllowReplacement gate the three
	// complete update operations.
	AllowInsertion   bool
	AllowDeletion    bool
	AllowReplacement bool

	// Island configures replacement handling per island node ID.
	Island map[string]IslandPolicy
	// Outside configures insertion/replacement handling per non-island
	// node ID.
	Outside map[string]OutsidePolicy
	// Peninsula configures deletion handling per peninsula node ID.
	Peninsula map[string]PeninsulaPolicy

	// RepairInserts permits global integrity maintenance to insert
	// dependency tuples into relations outside the view object (the
	// recursive repair of §5.2). When false, an update needing such a
	// repair rolls back.
	RepairInserts bool
}

// NewTranslator creates a translator for def with everything disallowed.
func NewTranslator(def *viewobject.Definition) *Translator {
	topo := Analyze(def)
	tr := &Translator{
		topo:      topo,
		Island:    make(map[string]IslandPolicy),
		Outside:   make(map[string]OutsidePolicy),
		Peninsula: make(map[string]PeninsulaPolicy),
	}
	return tr
}

// PermissiveTranslator creates the translator the §6 dialog's mostly-YES
// answers produce: every operation allowed, island keys replaceable (but
// not merged with existing tuples), outside relations insertable and
// modifiable, peninsulas updatable on delete with the key-aware default
// action, and global repair insertions permitted.
func PermissiveTranslator(def *viewobject.Definition) *Translator {
	tr := NewTranslator(def)
	tr.AllowInsertion = true
	tr.AllowDeletion = true
	tr.AllowReplacement = true
	tr.RepairInserts = true
	for _, id := range tr.topo.Island() {
		tr.Island[id] = IslandPolicy{
			AllowKeyModification:   true,
			AllowDBKeyReplace:      true,
			AllowMergeWithExisting: false, // the dialog's one NO
		}
	}
	for _, id := range tr.topo.NonIsland() {
		tr.Outside[id] = OutsidePolicy{Modifiable: true, AllowInsert: true, AllowModifyExisting: true}
	}
	for _, id := range tr.topo.Peninsulas() {
		tr.Peninsula[id] = PeninsulaPolicy{
			AllowUpdateOnDelete: true,
			OnDelete:            tr.defaultPeninsulaAction(id),
		}
	}
	return tr
}

// defaultPeninsulaAction picks delete-tuple when the peninsula's
// referencing attributes participate in its key (null would corrupt the
// key) and set-null otherwise.
func (tr *Translator) defaultPeninsulaAction(nodeID string) PeninsulaAction {
	def := tr.topo.Def
	n, ok := def.Node(nodeID)
	if !ok {
		return PeninsulaRestrict
	}
	g := def.Graph()
	schema := g.Database().MustRelation(n.Relation).Schema()
	for _, c := range g.Outgoing(n.Relation) {
		if c.Type != structural.Reference {
			continue
		}
		for _, a := range c.FromAttrs {
			if schema.IsKeyName(a) {
				return PeninsulaDeleteTuple
			}
		}
	}
	return PeninsulaSetNull
}

// Definition returns the view object this translator serves.
func (tr *Translator) Definition() *viewobject.Definition { return tr.topo.Def }

// Topology returns the island/peninsula analysis.
func (tr *Translator) Topology() *Topology { return tr.topo }

// islandPolicy returns the island policy for a node (zero = all NO).
func (tr *Translator) islandPolicy(nodeID string) IslandPolicy {
	return tr.Island[nodeID]
}

// outsidePolicy returns the outside policy for a node (zero = all NO).
func (tr *Translator) outsidePolicy(nodeID string) OutsidePolicy {
	return tr.Outside[nodeID]
}

// peninsulaPolicy returns the peninsula policy for a node (zero = restrict).
func (tr *Translator) peninsulaPolicy(nodeID string) PeninsulaPolicy {
	p, ok := tr.Peninsula[nodeID]
	if !ok {
		return PeninsulaPolicy{AllowUpdateOnDelete: false, OnDelete: PeninsulaRestrict}
	}
	return p
}
