package vupdate

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/viewobject"
)

// ErrRejected wraps every policy rejection: the requested view-object
// update has no translation under the chosen translator, so the
// transaction rolls back. Use errors.Is to distinguish rejections from
// infrastructure failures.
var ErrRejected = errors.New("view-object update rejected by translator")

// OpKind identifies a primitive database operation.
type OpKind uint8

// Primitive database operations emitted by the translation algorithms.
const (
	OpInsert OpKind = iota
	OpDelete
	OpReplace
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpReplace:
		return "replace"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// DBOp records one primitive database operation of a translation.
type DBOp struct {
	Kind     OpKind
	Relation string
	// Key identifies the affected tuple for deletes and replaces.
	Key reldb.Tuple
	// Tuple is the inserted or replacing tuple.
	Tuple reldb.Tuple
}

// String implements fmt.Stringer.
func (op DBOp) String() string {
	switch op.Kind {
	case OpInsert:
		return fmt.Sprintf("insert %s %s", op.Relation, op.Tuple)
	case OpDelete:
		return fmt.Sprintf("delete %s key %s", op.Relation, op.Key)
	case OpReplace:
		return fmt.Sprintf("replace %s key %s with %s", op.Relation, op.Key, op.Tuple)
	default:
		return fmt.Sprintf("%s %s", op.Kind, op.Relation)
	}
}

// Result reports a committed view-object update: the database operations
// performed, in execution order.
type Result struct {
	Ops []DBOp
}

// Count returns the number of operations of the given kind.
func (r *Result) Count(kind OpKind) int {
	n := 0
	for _, op := range r.Ops {
		if op.Kind == kind {
			n++
		}
	}
	return n
}

// String renders the operations one per line.
func (r *Result) String() string {
	lines := make([]string, len(r.Ops))
	for i, op := range r.Ops {
		lines[i] = op.String()
	}
	return strings.Join(lines, "\n")
}

// Updater executes view-object updates on a database under a translator.
// The database must be the one the translator's definition was built over.
type Updater struct {
	T *Translator
	// Hooks, when non-nil, lets a coordinator intercept the transaction
	// lifecycle (sharding uses this to supply a pre-acquired transaction
	// and to take over the commit decision). An Updater with hooks is
	// single-use state owned by its coordinator call; the plain shared
	// Updater keeps Hooks nil.
	Hooks *TxHooks
}

// NewUpdater creates an updater for the translator.
func NewUpdater(t *Translator) *Updater { return &Updater{T: t} }

// TxHooks intercepts an update's transaction lifecycle. Begin supplies
// the write transaction instead of db.Begin(); Finish receives the
// translated operations after a successful translation and owns the
// commit (run neither commits nor rolls back when Finish is set — on a
// Finish error the coordinator decides the transaction's fate).
// Translation failures still roll back the supplied transaction inside
// run, exactly like the unhooked path.
type TxHooks struct {
	Begin  func() (*reldb.Tx, error)
	Finish func(tx *reldb.Tx, ops []DBOp) error
}

// session carries one in-flight update translation: the transaction, the
// op log, and bookkeeping shared by the algorithms.
type session struct {
	tr  *Translator
	def *viewobject.Definition
	g   *structural.Graph
	tx  *reldb.Tx
	op  obs.Op // the update's root span (zero when untraced)
	ops []DBOp
}

// StepProbe is a test hook invoked at the start of every §5 pipeline
// step with the step and the view-object name. The flight-recorder
// acceptance tests install one to inject latency into a chosen step;
// production never sets it, so the cost is one atomic load per step.
type StepProbe func(st obs.Step, object string)

// stepProbe is the installed probe (nil normally).
var stepProbe atomic.Pointer[StepProbe]

// SetStepProbe installs the step probe (nil removes it) and returns the
// previous one.
func SetStepProbe(p StepProbe) StepProbe {
	var prev *StepProbe
	if p == nil {
		prev = stepProbe.Swap(nil)
	} else {
		prev = stepProbe.Swap(&p)
	}
	if prev == nil {
		return nil
	}
	return *prev
}

// run executes fn inside a transaction against the definition's database,
// committing on success and rolling back on error. Committed updates
// record their emitted operations into the obs op counters (so the
// counters always match the returned Result); rejections record their
// reason.
func (u *Updater) run(fn func(*session) error) (*Result, error) {
	def := u.T.Definition()
	db := def.Graph().Database()
	// The root span opens before Begin so the commit child (which covers
	// Begin→Commit) nests inside it even across writer-lock waits.
	op := obs.Default.StartOp("vupdate.update")
	var tx *reldb.Tx
	if u.Hooks != nil && u.Hooks.Begin != nil {
		var err error
		if tx, err = u.Hooks.Begin(); err != nil {
			if op.Active() {
				op.Finish(fmt.Sprintf("object=%s begin failed", def.Name))
			}
			return nil, err
		}
	} else {
		tx = db.Begin()
	}
	s := &session{tr: u.T, def: def, g: def.Graph(), op: op, tx: tx}
	s.tx.SetTraceOp(op)
	slot := def.MetricSlot()
	if err := fn(s); err != nil {
		_ = s.tx.Rollback()
		countRejection(err, slot)
		if op.Active() {
			op.Finish(fmt.Sprintf("object=%s rejected", def.Name))
		}
		return nil, err
	}
	if u.Hooks != nil && u.Hooks.Finish != nil {
		if err := u.Hooks.Finish(s.tx, s.ops); err != nil {
			return nil, err
		}
	} else if err := s.tx.Commit(); err != nil {
		return nil, err
	}
	obs.Default.UpdatesCommitted.Inc()
	obs.Default.CommittedByObject.At(slot).Inc()
	for _, dbop := range s.ops {
		if int(dbop.Kind) < obs.NumOpKinds {
			obs.Default.Ops[dbop.Kind].Inc()
			obs.Default.OpsByObject[dbop.Kind].At(slot).Inc()
		}
	}
	if op.Active() {
		op.Finish(fmt.Sprintf("object=%s ops=%d", def.Name, len(s.ops)))
	}
	return &Result{Ops: s.ops}, nil
}

// countRejection records a failed translation in the rejection counters,
// both aggregate and split by the object's label slot. Missing-tuple
// errors count as no-instance rejections even though they do not wrap
// ErrRejected (the addressed instance simply is not there);
// infrastructure errors are not counted.
func countRejection(err error, slot int) {
	if !errors.Is(err, ErrRejected) && !errors.Is(err, reldb.ErrNoSuchTuple) {
		return
	}
	reason := ReasonOf(err)
	obs.Default.UpdatesRejected.Inc()
	obs.Default.Rejects[reason].Inc()
	obs.Default.RejectedByObject.At(slot).Inc()
	obs.Default.RejectsByObject[reason].At(slot).Inc()
}

// step times one §5 pipeline step into the per-step histogram and, when
// traced, emits the step as a child span of the update's root op (or a
// flat span when the update itself is untraced but a sink is on).
func (s *session) step(st obs.Step, fn func() error) error {
	start := time.Now()
	// The probe runs inside the timed interval so injected latency shows
	// up in the step's span and histogram like real work would.
	if p := stepProbe.Load(); p != nil {
		(*p)(st, s.def.Name)
	}
	err := fn()
	dur := time.Since(start).Nanoseconds()
	obs.Default.StepNs[st].Observe(dur)
	obs.Default.StepNsByObject[st].At(s.def.MetricSlot()).Observe(dur)
	if s.op.Active() {
		s.op.ChildAt("vupdate.step."+st.String(), start).Finish(s.def.Name)
	} else if obs.Default.Tracing() {
		obs.Default.EmitSpan("vupdate.step."+st.String(), s.def.Name, start)
	}
	return err
}

func (s *session) insert(rel string, t reldb.Tuple) error {
	if err := s.tx.Insert(rel, t); err != nil {
		return err
	}
	s.ops = append(s.ops, DBOp{Kind: OpInsert, Relation: rel, Tuple: t.Clone()})
	return nil
}

func (s *session) delete(rel string, key reldb.Tuple) error {
	if _, err := s.tx.Delete(rel, key); err != nil {
		return err
	}
	s.ops = append(s.ops, DBOp{Kind: OpDelete, Relation: rel, Key: key.Clone()})
	return nil
}

func (s *session) replace(rel string, oldKey reldb.Tuple, newTuple reldb.Tuple) error {
	if _, err := s.tx.Replace(rel, oldKey, newTuple); err != nil {
		return err
	}
	s.ops = append(s.ops, DBOp{Kind: OpReplace, Relation: rel, Key: oldKey.Clone(), Tuple: newTuple.Clone()})
	return nil
}

// relation resolves a relation inside the transaction.
func (s *session) relation(name string) (*reldb.Relation, error) {
	return s.tx.Relation(name)
}

// schemaOf returns the base schema of a node's relation.
func (s *session) schemaOf(n *viewobject.Node) *reldb.Schema {
	rel, err := s.tx.Relation(n.Relation)
	if err != nil {
		panic(err) // definitions are validated against the database
	}
	return rel.Schema()
}

// reject builds a translator-policy rejection (the default reason; use
// rejectAs to tag a more specific one).
func reject(format string, args ...any) error {
	return rejectAs(ReasonTranslatorPolicy, format, args...)
}

// checkInstance verifies an instance belongs to the updater's definition
// (local validation, step 1).
func (u *Updater) checkInstance(inst *viewobject.Instance) error {
	if inst == nil {
		return fmt.Errorf("vupdate: nil instance")
	}
	if inst.Definition() != u.T.Definition() {
		return fmt.Errorf("vupdate: instance belongs to object %s, translator serves %s",
			inst.Definition().Name, u.T.Definition().Name)
	}
	return nil
}
