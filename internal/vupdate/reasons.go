package vupdate

import (
	"errors"
	"fmt"

	"penguin/internal/obs"
	"penguin/internal/reldb"
)

// Reason classifies why a view-object update was rejected. Every
// rejection still wraps ErrRejected — errors.Is(err, ErrRejected) keeps
// working unchanged — but callers (and the obs rejection counters) can
// now distinguish a translator policy refusal from a structural
// integrity violation or a key conflict.
//
// The numeric values index obs.Registry.Rejects and must stay aligned
// with the slug table in the obs package (asserted by TestReasonNames).
type Reason uint8

// Rejection reasons.
const (
	// ReasonUnknown covers rejections raised before the taxonomy existed
	// and errors that merely wrap ErrRejected without a Rejection.
	ReasonUnknown Reason = iota
	// ReasonNoInstance: the addressed instance (or component) does not
	// exist in the current database state.
	ReasonNoInstance
	// ReasonTranslatorPolicy: the chosen translator's policies forbid the
	// requested operation (§6 dialog outcomes: AllowDeletion=false,
	// non-modifiable outside relations, restrictive peninsula policies).
	ReasonTranslatorPolicy
	// ReasonIntegrity: the request is internally inconsistent with the
	// view-object structure (disconnected components, null connection
	// attributes — step 1 of §5).
	ReasonIntegrity
	// ReasonAmbiguousKey: the requested key change has no unambiguous
	// translation (precluded key changes of outside relations, partial
	// deletions outside the dependency island, peninsula key rewrites).
	ReasonAmbiguousKey
	// ReasonConflict: existing tuples conflict with the request (VO-CI
	// cases 1 and 3 inside the dependency island, key adoption during
	// replacement).
	ReasonConflict

	numReasons // sentinel; must equal obs.NumRejectReasons
)

// String returns the stable slug used in stats snapshots
// (vupdate.reject.<slug>). The names live in the obs package so
// snapshots render without importing vupdate.
func (r Reason) String() string { return obs.RejectReasonName(int(r)) }

// Rejection is the error raised when a view-object update has no
// translation. It wraps ErrRejected, so existing errors.Is checks are
// unaffected, and carries the Reason for the obs rejection counters.
type Rejection struct {
	Reason Reason
	msg    string
}

// Error renders "<context>: view-object update rejected by translator",
// the exact format rejections used before reasons were attached.
func (r *Rejection) Error() string { return r.msg + ": " + ErrRejected.Error() }

// Unwrap makes errors.Is(err, ErrRejected) true for every Rejection.
func (r *Rejection) Unwrap() error { return ErrRejected }

// rejectAs builds a rejection tagged with a reason.
func rejectAs(reason Reason, format string, args ...any) error {
	return &Rejection{Reason: reason, msg: fmt.Sprintf(format, args...)}
}

// ReasonOf extracts the rejection reason from an update error:
// the Rejection's reason when one is present, ReasonNoInstance for
// missing-tuple errors, and ReasonUnknown for bare ErrRejected wraps.
// For errors that are not rejections at all it returns ReasonUnknown;
// gate on errors.Is(err, ErrRejected) first to tell the cases apart.
func ReasonOf(err error) Reason {
	var rej *Rejection
	if errors.As(err, &rej) {
		return rej.Reason
	}
	if errors.Is(err, reldb.ErrNoSuchTuple) {
		return ReasonNoInstance
	}
	return ReasonUnknown
}
