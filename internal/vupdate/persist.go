package vupdate

import (
	"encoding/json"
	"fmt"
	"io"

	"penguin/internal/reldb"
	"penguin/internal/viewobject"
)

// Translator persistence. The whole point of definition-time translator
// choice is that the dialog happens once; the chosen policies are a
// durable artifact of the view-object definition. SavePolicies writes
// them as JSON; LoadTranslator re-binds them to a definition (typically
// after a restart, against the same structural schema).

// policiesDoc is the serialized form.
type policiesDoc struct {
	Object           string                     `json:"object"`
	Pivot            string                     `json:"pivot"`
	AllowInsertion   bool                       `json:"allow_insertion"`
	AllowDeletion    bool                       `json:"allow_deletion"`
	AllowReplacement bool                       `json:"allow_replacement"`
	RepairInserts    bool                       `json:"repair_inserts"`
	Island           map[string]IslandPolicy    `json:"island,omitempty"`
	Outside          map[string]OutsidePolicy   `json:"outside,omitempty"`
	Peninsula        map[string]peninsulaPolicy `json:"peninsula,omitempty"`
}

// peninsulaPolicy serializes PeninsulaPolicy (the default tuple becomes a
// list of literals).
type peninsulaPolicy struct {
	AllowUpdateOnDelete bool     `json:"allow_update_on_delete"`
	OnDelete            string   `json:"on_delete"`
	Default             []string `json:"default,omitempty"`
	DefaultKinds        []string `json:"default_kinds,omitempty"`
}

var actionNames = map[PeninsulaAction]string{
	PeninsulaDeleteTuple:    "delete-tuple",
	PeninsulaSetNull:        "set-null",
	PeninsulaReplaceDefault: "replace-default",
	PeninsulaRestrict:       "restrict",
}

func actionFromName(name string) (PeninsulaAction, error) {
	for a, n := range actionNames {
		if n == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("vupdate: unknown peninsula action %q", name)
}

// SavePolicies serializes the translator's policies to w.
func (tr *Translator) SavePolicies(w io.Writer) error {
	doc := policiesDoc{
		Object:           tr.topo.Def.Name,
		Pivot:            tr.topo.Def.Pivot(),
		AllowInsertion:   tr.AllowInsertion,
		AllowDeletion:    tr.AllowDeletion,
		AllowReplacement: tr.AllowReplacement,
		RepairInserts:    tr.RepairInserts,
		Island:           tr.Island,
		Outside:          tr.Outside,
		Peninsula:        make(map[string]peninsulaPolicy, len(tr.Peninsula)),
	}
	for id, p := range tr.Peninsula {
		sp := peninsulaPolicy{
			AllowUpdateOnDelete: p.AllowUpdateOnDelete,
			OnDelete:            actionNames[p.OnDelete],
		}
		for _, v := range p.Default {
			sp.Default = append(sp.Default, v.String())
			sp.DefaultKinds = append(sp.DefaultKinds, v.Kind().String())
		}
		doc.Peninsula[id] = sp
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadTranslator deserializes policies from r and binds them to def. The
// document must have been saved for an object with the same name and
// pivot; node IDs in the policies must exist in def.
func LoadTranslator(def *viewobject.Definition, r io.Reader) (*Translator, error) {
	var doc policiesDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("vupdate: loading translator: %w", err)
	}
	if doc.Object != def.Name {
		return nil, fmt.Errorf("vupdate: translator was saved for object %q, not %q", doc.Object, def.Name)
	}
	if doc.Pivot != def.Pivot() {
		return nil, fmt.Errorf("vupdate: translator was saved for pivot %q, not %q", doc.Pivot, def.Pivot())
	}
	tr := NewTranslator(def)
	tr.AllowInsertion = doc.AllowInsertion
	tr.AllowDeletion = doc.AllowDeletion
	tr.AllowReplacement = doc.AllowReplacement
	tr.RepairInserts = doc.RepairInserts
	topo := tr.Topology()
	for id, p := range doc.Island {
		if !topo.InIsland(id) {
			return nil, fmt.Errorf("vupdate: saved island policy for %q, which is not an island node", id)
		}
		tr.Island[id] = p
	}
	for id, p := range doc.Outside {
		if _, ok := def.Node(id); !ok {
			return nil, fmt.Errorf("vupdate: saved outside policy for unknown node %q", id)
		}
		tr.Outside[id] = p
	}
	for id, sp := range doc.Peninsula {
		if _, ok := def.Node(id); !ok {
			return nil, fmt.Errorf("vupdate: saved peninsula policy for unknown node %q", id)
		}
		action, err := actionFromName(sp.OnDelete)
		if err != nil {
			return nil, err
		}
		p := PeninsulaPolicy{AllowUpdateOnDelete: sp.AllowUpdateOnDelete, OnDelete: action}
		if len(sp.Default) != len(sp.DefaultKinds) {
			return nil, fmt.Errorf("vupdate: peninsula %q default values and kinds disagree", id)
		}
		for i, lit := range sp.Default {
			kind, err := reldb.ParseKind(sp.DefaultKinds[i])
			if err != nil {
				return nil, err
			}
			v, err := reldb.ParseValue(kind, lit)
			if err != nil {
				return nil, err
			}
			p.Default = append(p.Default, v)
		}
		tr.Peninsula[id] = p
	}
	return tr, nil
}
