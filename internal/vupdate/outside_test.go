package vupdate_test

import (
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	. "penguin/internal/vupdate"
)

// §5.1: "for relations in the dependency island that have outgoing
// ownership or subset connections, the deletions must be propagated
// (repeatedly, if necessary) to those owned and subset relations" — even
// when those relations are NOT part of the view object. Build an
// out-of-object chain GRADES —* APPEALS —* APPEALNOTES and verify VO-CD
// on ω reaches both.
func TestVOCDCascadesOutsideTheObject(t *testing.T) {
	db, g := university.MustNewSeeded()
	db.MustCreateRelation(reldb.MustSchema("APPEALS", []reldb.Attribute{
		{Name: "CourseID", Type: reldb.KindString},
		{Name: "PID", Type: reldb.KindInt},
		{Name: "Seq", Type: reldb.KindInt},
		{Name: "Reason", Type: reldb.KindString, Nullable: true},
	}, []string{"CourseID", "PID", "Seq"}))
	db.MustCreateRelation(reldb.MustSchema("APPEALNOTES", []reldb.Attribute{
		{Name: "CourseID", Type: reldb.KindString},
		{Name: "PID", Type: reldb.KindInt},
		{Name: "Seq", Type: reldb.KindInt},
		{Name: "NoteNo", Type: reldb.KindInt},
		{Name: "Text", Type: reldb.KindString, Nullable: true},
	}, []string{"CourseID", "PID", "Seq", "NoteNo"}))
	g.MustAddConnection(&structural.Connection{
		Name: "grade-appeals", Type: structural.Ownership,
		From: university.Grades, To: "APPEALS",
		FromAttrs: []string{"CourseID", "PID"}, ToAttrs: []string{"CourseID", "PID"},
	})
	g.MustAddConnection(&structural.Connection{
		Name: "appeal-notes", Type: structural.Ownership,
		From: "APPEALS", To: "APPEALNOTES",
		FromAttrs: []string{"CourseID", "PID", "Seq"}, ToAttrs: []string{"CourseID", "PID", "Seq"},
	})
	err := db.RunInTx(func(tx *reldb.Tx) error {
		if err := tx.Insert("APPEALS", reldb.Tuple{s("CS345"), iv(4), iv(1), s("regrade")}); err != nil {
			return err
		}
		return tx.Insert("APPEALNOTES", reldb.Tuple{s("CS345"), iv(4), iv(1), iv(1), s("pending")})
	})
	if err != nil {
		t.Fatal(err)
	}

	// ω does NOT include APPEALS or APPEALNOTES.
	om := university.MustOmega(g)
	if _, ok := om.Node("APPEALS"); ok {
		t.Fatal("test premise broken: APPEALS is in ω")
	}
	u := NewUpdater(PermissiveTranslator(om))
	res, err := u.DeleteByKey(reldb.Tuple{s("CS345")})
	if err != nil {
		t.Fatal(err)
	}
	if db.MustRelation("APPEALS").Count() != 0 || db.MustRelation("APPEALNOTES").Count() != 0 {
		t.Fatal("out-of-object ownership chain not cascaded")
	}
	// course + 3 grades + 2 curricula + appeal + note.
	if res.Count(OpDelete) != 8 {
		t.Fatalf("deletes = %d\n%s", res.Count(OpDelete), res)
	}
	auditClean(t, db, g)
}

// Replacement of an island key also propagates to out-of-object owned
// relations (§5.3: "if a relation outside of the object is attached to
// the dependency island by an ownership or subset connection, the
// replacement has to be propagated to it").
func TestVORKeyChangePropagatesOutsideTheObject(t *testing.T) {
	db, g := university.MustNewSeeded()
	db.MustCreateRelation(reldb.MustSchema("SYLLABUS", []reldb.Attribute{
		{Name: "CourseID", Type: reldb.KindString},
		{Name: "Week", Type: reldb.KindInt},
		{Name: "Topic", Type: reldb.KindString, Nullable: true},
	}, []string{"CourseID", "Week"}))
	g.MustAddConnection(&structural.Connection{
		Name: "course-syllabus", Type: structural.Ownership,
		From: university.Courses, To: "SYLLABUS",
		FromAttrs: []string{"CourseID"}, ToAttrs: []string{"CourseID"},
	})
	err := db.RunInTx(func(tx *reldb.Tx) error {
		return tx.Insert("SYLLABUS", reldb.Tuple{s("CS345"), iv(1), s("relational model")})
	})
	if err != nil {
		t.Fatal(err)
	}
	om := university.MustOmega(g)
	u := NewUpdater(PermissiveTranslator(om))
	old, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{s("CS345")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	repl := old.Clone()
	_ = repl.Root().SetAttr(om, "CourseID", s("EES345"))
	if _, err := u.ReplaceInstance(old, repl); err != nil {
		t.Fatal(err)
	}
	if !db.MustRelation("SYLLABUS").Has(reldb.Tuple{s("EES345"), iv(1)}) {
		t.Fatal("out-of-object syllabus row did not follow the key change")
	}
	if db.MustRelation("SYLLABUS").Has(reldb.Tuple{s("CS345"), iv(1)}) {
		t.Fatal("old syllabus row survived")
	}
	auditClean(t, db, g)
}

// Updates through ω′ (Figure 3): no island beyond the pivot, components
// attached through multi-connection paths. A complete deletion deletes
// the pivot and cascades through the (out-of-object) GRADES rows;
// STUDENT and FACULTY base data survives.
func TestOmegaPrimeDeletion(t *testing.T) {
	db, g := university.MustNewSeeded()
	op := university.MustOmegaPrime(g)
	u := NewUpdater(PermissiveTranslator(op))
	res, err := u.DeleteByKey(reldb.Tuple{s("CS345")})
	if err != nil {
		t.Fatal(err)
	}
	if db.MustRelation(university.Courses).Has(reldb.Tuple{s("CS345")}) {
		t.Fatal("pivot survived")
	}
	grades, _ := db.MustRelation(university.Grades).MatchEqual([]string{"CourseID"}, reldb.Tuple{s("CS345")})
	if len(grades) != 0 {
		t.Fatal("grades survived (ownership cascade must cover them)")
	}
	if db.MustRelation(university.Student).Count() != 5 ||
		db.MustRelation(university.Faculty).Count() != 2 {
		t.Fatal("students/faculty must survive")
	}
	if res.Count(OpDelete) != 6 { // course + 3 grades + 2 curriculum rows
		t.Fatalf("deletes = %d\n%s", res.Count(OpDelete), res)
	}
	auditClean(t, db, g)
}

// Non-key replacement through ω′ on an outside component reached by a
// multi-connection path.
func TestOmegaPrimeOutsideReplace(t *testing.T) {
	db, g := university.MustNewSeeded()
	op := university.MustOmegaPrime(g)
	u := NewUpdater(PermissiveTranslator(op))
	old, ok, err := viewobject.InstantiateByKey(db, op, reldb.Tuple{s("CS345")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	repl := old.Clone()
	for _, st := range repl.Root().Children(university.Student) {
		if st.Tuple()[0].MustInt() == 4 {
			if err := st.SetAttr(op, "Year", iv(5)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := u.ReplaceInstance(old, repl); err != nil {
		t.Fatal(err)
	}
	got, _ := db.MustRelation(university.Student).Get(reldb.Tuple{iv(4)})
	if y, _ := got[2].AsInt(); y != 5 {
		t.Fatalf("year = %v", got[2])
	}
	auditClean(t, db, g)
}

// Pivot key change through ω′: the island is just COURSES, but grades
// (outside the object) must still follow via the structural propagation.
func TestOmegaPrimePivotKeyChange(t *testing.T) {
	db, g := university.MustNewSeeded()
	op := university.MustOmegaPrime(g)
	u := NewUpdater(PermissiveTranslator(op))
	old, ok, err := viewobject.InstantiateByKey(db, op, reldb.Tuple{s("CS345")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	repl := old.Clone()
	_ = repl.Root().SetAttr(op, "CourseID", s("EES345"))
	if _, err := u.ReplaceInstance(old, repl); err != nil {
		t.Fatal(err)
	}
	moved, _ := db.MustRelation(university.Grades).MatchEqual([]string{"CourseID"}, reldb.Tuple{s("EES345")})
	if len(moved) != 3 {
		t.Fatalf("grades under new key = %d, want 3", len(moved))
	}
	curr, _ := db.MustRelation(university.Curriculum).MatchEqual([]string{"CourseID"}, reldb.Tuple{s("EES345")})
	if len(curr) != 2 {
		t.Fatalf("curriculum under new key = %d, want 2", len(curr))
	}
	auditClean(t, db, g)
}
