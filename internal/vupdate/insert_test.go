package vupdate_test

import (
	"errors"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	. "penguin/internal/vupdate"
)

// newCourseInstance hand-builds a fully specified ω instance for a new
// course CS999 with one grade by an existing student and an existing
// department.
func newCourseInstance(t *testing.T, om *viewobject.Definition) *viewobject.Instance {
	t.Helper()
	inst := viewobject.MustNewInstance(om, reldb.Tuple{
		s("CS999"), s("Advanced Penguins"), s("Computer Science"), iv(3), s("graduate"),
	})
	inst.Root().MustAddChild(om, university.Department,
		reldb.Tuple{s("Computer Science"), s("Gates"), reldb.Null()})
	gr := inst.Root().MustAddChild(om, university.Grades,
		reldb.Tuple{s("CS999"), iv(1), s("Aut91"), s("A")})
	gr.MustAddChild(om, university.Student, reldb.Tuple{iv(1), s("PhD"), iv(3)})
	inst.Root().MustAddChild(om, university.Curriculum,
		reldb.Tuple{s("Computer Science"), s("MS"), s("CS999")})
	return inst
}

func TestVOCIInsertNewInstance(t *testing.T) {
	db, g, om, u := fixture(t)
	res, err := u.InsertInstance(newCourseInstance(t, om))
	if err != nil {
		t.Fatal(err)
	}
	if !db.MustRelation(university.Courses).Has(reldb.Tuple{s("CS999")}) {
		t.Fatal("course not inserted")
	}
	if !db.MustRelation(university.Grades).Has(reldb.Tuple{s("CS999"), iv(1)}) {
		t.Fatal("grade not inserted")
	}
	if !db.MustRelation(university.Curriculum).Has(reldb.Tuple{s("Computer Science"), s("MS"), s("CS999")}) {
		t.Fatal("curriculum row not inserted")
	}
	// CASE 1 outside the island: DEPARTMENT and STUDENT already exist
	// identically — no operation.
	if db.MustRelation(university.Department).Count() != 3 {
		t.Fatal("department duplicated")
	}
	if db.MustRelation(university.Student).Count() != 5 {
		t.Fatal("student duplicated")
	}
	// course + grade + curriculum.
	if res.Count(OpInsert) != 3 || res.Count(OpReplace) != 0 || res.Count(OpDelete) != 0 {
		t.Fatalf("ops:\n%s", res)
	}
	auditClean(t, db, g)
}

func TestVOCINotAllowed(t *testing.T) {
	_, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.AllowInsertion = false
	u := NewUpdater(tr)
	if _, err := u.InsertInstance(newCourseInstance(t, om)); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

// CASE 1 in the island: inserting an instance whose pivot tuple already
// exists identically is rejected, and nothing is left behind.
func TestVOCIRejectsIdenticalIslandTuple(t *testing.T) {
	db, _, om, u := fixture(t)
	inst, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{s("CS345")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	before := db.TotalRows()
	_, err = u.InsertInstance(inst)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
	if db.TotalRows() != before {
		t.Fatal("rejected insertion mutated the database")
	}
}

// CASE 3 in the island: key exists with differing values — rejected.
func TestVOCIRejectsConflictingIslandTuple(t *testing.T) {
	db, _, om, u := fixture(t)
	inst := viewobject.MustNewInstance(om, reldb.Tuple{
		s("CS345"), s("Different Title"), s("Computer Science"), iv(4), s("graduate"),
	})
	before := db.TotalRows()
	if _, err := u.InsertInstance(inst); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	if db.TotalRows() != before {
		t.Fatal("mutated despite rejection")
	}
}

// CASE 3 outside the island: conflicting values replace the existing
// tuple when the translator allows it, merging only projected attributes.
func TestVOCIOutsideConflictReplaces(t *testing.T) {
	db, g, om, u := fixture(t)
	inst := viewobject.MustNewInstance(om, reldb.Tuple{
		s("CS999"), s("T"), s("Computer Science"), iv(3), s("graduate"),
	})
	// DEPARTMENT with a different building: ω projects (DeptName,
	// Building), so Building is replaced and Budget (outside the
	// projection) is preserved.
	inst.Root().MustAddChild(om, university.Department,
		reldb.Tuple{s("Computer Science"), s("New Gates Wing"), reldb.Null()})
	if _, err := u.InsertInstance(inst); err != nil {
		t.Fatal(err)
	}
	dep, _ := db.MustRelation(university.Department).Get(reldb.Tuple{s("Computer Science")})
	if dep[1].MustString() != "New Gates Wing" {
		t.Fatalf("building = %v", dep[1])
	}
	if dep[2].IsNull() {
		t.Fatal("budget (outside projection) should be preserved")
	}
	auditClean(t, db, g)
}

func TestVOCIOutsideConflictRejectedWhenNotModifiable(t *testing.T) {
	_, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.Outside[university.Department] = OutsidePolicy{Modifiable: true, AllowInsert: true, AllowModifyExisting: false}
	u := NewUpdater(tr)
	inst := viewobject.MustNewInstance(om, reldb.Tuple{
		s("CS999"), s("T"), s("Computer Science"), iv(3), s("graduate"),
	})
	inst.Root().MustAddChild(om, university.Department,
		reldb.Tuple{s("Computer Science"), s("Elsewhere"), reldb.Null()})
	if _, err := u.InsertInstance(inst); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

// Global repair (§5.2): inserting an instance with a grade for an unknown
// student triggers recursive dependency insertion — STUDENT, then PEOPLE.
func TestVOCIGlobalRepairRecursive(t *testing.T) {
	db, g, om, u := fixture(t)
	inst := viewobject.MustNewInstance(om, reldb.Tuple{
		s("CS999"), s("T"), s("Computer Science"), iv(3), s("graduate"),
	})
	inst.Root().MustAddChild(om, university.Grades,
		reldb.Tuple{s("CS999"), iv(777), s("Aut91"), s("B")})
	res, err := u.InsertInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	// STUDENT 777 and PEOPLE 777 were repaired into existence.
	if !db.MustRelation(university.Student).Has(reldb.Tuple{iv(777)}) {
		t.Fatal("missing repaired STUDENT")
	}
	if !db.MustRelation(university.People).Has(reldb.Tuple{iv(777)}) {
		t.Fatal("missing repaired PEOPLE")
	}
	// course + grade + student + people = 4 inserts.
	if res.Count(OpInsert) != 4 {
		t.Fatalf("ops:\n%s", res)
	}
	auditClean(t, db, g)
}

// The same insertion is rejected when the translator forbids the repair
// insertions (STUDENT is an object node gated by its outside policy;
// PEOPLE is out-of-object gated by RepairInserts).
func TestVOCIGlobalRepairGated(t *testing.T) {
	db, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.Outside[university.Student] = OutsidePolicy{Modifiable: false}
	u := NewUpdater(tr)
	inst := viewobject.MustNewInstance(om, reldb.Tuple{
		s("CS998"), s("T"), s("Computer Science"), iv(3), s("graduate"),
	})
	inst.Root().MustAddChild(om, university.Grades,
		reldb.Tuple{s("CS998"), iv(778), s("Aut91"), s("B")})
	before := db.TotalRows()
	if _, err := u.InsertInstance(inst); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	if db.TotalRows() != before {
		t.Fatal("mutated despite rejection")
	}

	// Allow STUDENT repairs but forbid out-of-object repairs (PEOPLE).
	tr2 := PermissiveTranslator(om)
	tr2.RepairInserts = false
	u2 := NewUpdater(tr2)
	if _, err := u2.InsertInstance(inst); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	if db.TotalRows() != before {
		t.Fatal("mutated despite rejection")
	}
}

// Inserting a course in a brand-new department: the forward-reference
// repair inserts the DEPARTMENT tuple (§5.2's check along reference
// connections) even though the instance carries no DEPARTMENT component.
func TestVOCIRepairInsertsReferencedDepartment(t *testing.T) {
	db, g, om, u := fixture(t)
	inst := viewobject.MustNewInstance(om, reldb.Tuple{
		s("EES345"), s("Decision Analysis"), s("Engineering Economic Systems"), iv(3), s("graduate"),
	})
	if _, err := u.InsertInstance(inst); err != nil {
		t.Fatal(err)
	}
	if !db.MustRelation(university.Department).Has(reldb.Tuple{s("Engineering Economic Systems")}) {
		t.Fatal("referenced department not repaired")
	}
	auditClean(t, db, g)
}

func TestVOCIInsertPermissionOutside(t *testing.T) {
	_, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.Outside[university.Curriculum] = OutsidePolicy{Modifiable: true, AllowInsert: false, AllowModifyExisting: true}
	u := NewUpdater(tr)
	inst := viewobject.MustNewInstance(om, reldb.Tuple{
		s("CS997"), s("T"), s("Computer Science"), iv(3), s("graduate"),
	})
	inst.Root().MustAddChild(om, university.Curriculum,
		reldb.Tuple{s("Computer Science"), s("MS"), s("CS997")})
	if _, err := u.InsertInstance(inst); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

func TestVOCIInvalidComponentTuple(t *testing.T) {
	_, _, om, u := fixture(t)
	inst := viewobject.MustNewInstance(om, reldb.Tuple{
		s("CS996"), s("T"), s("Computer Science"), iv(3), s("graduate"),
	})
	// A grade referencing a different course: the island key propagation
	// applies to replacements, not insertions, so CheckTuple passes but
	// the ownership repair kicks in — verify no orphan is possible by
	// checking the inserted grade's owner chain.
	inst.Root().MustAddChild(om, university.Grades,
		reldb.Tuple{s("CS996"), iv(1), reldb.Null(), reldb.Null()})
	if _, err := u.InsertInstance(inst); err != nil {
		t.Fatal(err)
	}
}
