// Package vupdate implements the paper's core contribution (§5): translating
// update operations on view-object instances into valid operations on the
// underlying relational database.
//
// A view-object update runs in four logical steps:
//
//  1. local validation against the view-object definition and the
//     translator's authorizations;
//  2. propagation within the view object (key-complement propagation down
//     the dependency island);
//  3. translation into a set of database update operations (algorithms
//     VO-CD, VO-CI, and VO-R);
//  4. global validation against the structural model (cascades outside the
//     object, foreign-key maintenance, dependency repair).
//
// Every operation executes inside one transaction: if any step is rejected,
// the whole view-object update rolls back (§5.1).
//
// The semantics that disambiguate translations are captured in a Translator
// chosen once, at view-object definition time, through a DBA dialog
// (§6; see dialog.go). Once chosen, the translator deterministically
// handles every runtime update request.
package vupdate

import (
	"sort"

	"penguin/internal/structural"
	"penguin/internal/viewobject"
)

// NodeClass classifies a view-object node for update translation.
type NodeClass uint8

// Node classes.
const (
	// ClassPivot is the pivot node (also part of the dependency island).
	ClassPivot NodeClass = iota
	// ClassIsland marks non-pivot members of the dependency island
	// (Definition 5.1): reachable from the pivot through forward
	// ownership and subset connections only.
	ClassIsland
	// ClassPeninsula marks referencing peninsulas (Definition 5.2):
	// relations of the object directly connected to an island relation by
	// a reference connection.
	ClassPeninsula
	// ClassReferenced marks relations that an island relation references
	// (§5.3 rule 2: key replacements there become insertions).
	ClassReferenced
	// ClassOutside marks every other node.
	ClassOutside
)

// String implements fmt.Stringer.
func (c NodeClass) String() string {
	switch c {
	case ClassPivot:
		return "pivot"
	case ClassIsland:
		return "island"
	case ClassPeninsula:
		return "peninsula"
	case ClassReferenced:
		return "referenced"
	case ClassOutside:
		return "outside"
	default:
		return "unknown"
	}
}

// Topology is the update-relevant classification of a view object's nodes.
type Topology struct {
	Def *viewobject.Definition
	// Class maps node ID to its class.
	Class map[string]NodeClass
}

// Analyze computes the dependency island, the referencing peninsulas, and
// the remaining node classes of a view object.
func Analyze(def *viewobject.Definition) *Topology {
	t := &Topology{Def: def, Class: make(map[string]NodeClass)}

	// Dependency island (Definition 5.1): maximal subtree rooted at the
	// pivot whose paths consist exclusively of forward ownership and
	// subset connections.
	var mark func(n *viewobject.Node, inIsland bool)
	mark = func(n *viewobject.Node, inIsland bool) {
		if n == def.Root() {
			t.Class[n.ID] = ClassPivot
		} else if inIsland {
			t.Class[n.ID] = ClassIsland
		}
		for _, c := range n.Children {
			childIn := inIsland && islandPath(c.Path)
			if !childIn {
				// Classified in the second pass.
				mark(c, false)
				continue
			}
			mark(c, true)
		}
	}
	mark(def.Root(), true)

	// Island relations (by base relation name) for peninsula detection.
	islandRels := make(map[string]bool)
	for id, cl := range t.Class {
		if cl == ClassPivot || cl == ClassIsland {
			n, _ := def.Node(id)
			islandRels[n.Relation] = true
		}
	}

	g := def.Graph()
	for _, n := range def.Nodes() {
		if _, done := t.Class[n.ID]; done {
			continue
		}
		t.Class[n.ID] = classifyOutside(g, n.Relation, islandRels)
	}
	return t
}

// islandPath reports whether every step of a connection path is a forward
// ownership or forward subset connection.
func islandPath(path []structural.Edge) bool {
	for _, e := range path {
		if !e.Forward {
			return false
		}
		if e.Conn.Type != structural.Ownership && e.Conn.Type != structural.Subset {
			return false
		}
	}
	return len(path) > 0
}

// classifyOutside decides between peninsula, referenced, and outside for a
// non-island relation.
func classifyOutside(g *structural.Graph, rel string, islandRels map[string]bool) NodeClass {
	// Peninsula: rel --> islandRel (Definition 5.2).
	for _, c := range g.Outgoing(rel) {
		if c.Type == structural.Reference && islandRels[c.To] {
			return ClassPeninsula
		}
	}
	// Referenced: islandRel --> rel.
	for _, c := range g.Incoming(rel) {
		if c.Type == structural.Reference && islandRels[c.From] {
			return ClassReferenced
		}
	}
	return ClassOutside
}

// Island returns the node IDs of the dependency island (pivot included),
// sorted.
func (t *Topology) Island() []string {
	return t.idsOf(func(c NodeClass) bool { return c == ClassPivot || c == ClassIsland })
}

// Peninsulas returns the node IDs of the referencing peninsulas, sorted.
func (t *Topology) Peninsulas() []string {
	return t.idsOf(func(c NodeClass) bool { return c == ClassPeninsula })
}

// NonIsland returns the node IDs outside the dependency island, sorted.
func (t *Topology) NonIsland() []string {
	return t.idsOf(func(c NodeClass) bool { return c != ClassPivot && c != ClassIsland })
}

// InIsland reports whether the node is part of the dependency island.
func (t *Topology) InIsland(nodeID string) bool {
	c, ok := t.Class[nodeID]
	return ok && (c == ClassPivot || c == ClassIsland)
}

func (t *Topology) idsOf(keep func(NodeClass) bool) []string {
	var ids []string
	for id, c := range t.Class {
		if keep(c) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}
