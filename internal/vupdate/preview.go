package vupdate

import (
	"penguin/internal/reldb"
	"penguin/internal/viewobject"
)

// Preview variants translate a view-object update and report the
// database operations it would perform, then roll the transaction back —
// the database is untouched. They make the translation inspectable: a
// DBA (or a test) can see exactly how a request maps to relational
// operations under the chosen translator before committing to it.

// runPreview executes fn inside a transaction over a private fork of a
// consistent read snapshot, returning the operations fn performed. The
// what-if reads see exactly the pinned committed state; the live database
// is untouched and its writer lock is never taken, so previews run
// concurrently with real update traffic.
func (u *Updater) runPreview(fn func(*session) error) (*Result, error) {
	def := u.T.Definition()
	db := def.Graph().Database()
	rtx := db.BeginRead()
	defer rtx.Close()
	s := &session{tr: u.T, def: def, g: def.Graph(), tx: rtx.Fork().Begin()}
	err := fn(s)
	ops := s.ops
	_ = s.tx.Rollback()
	if err != nil {
		return nil, err
	}
	return &Result{Ops: ops}, nil
}

// PreviewDeleteByKey translates a complete deletion without executing it.
func (u *Updater) PreviewDeleteByKey(key reldb.Tuple) (*Result, error) {
	return u.runPreview(func(s *session) error {
		inst, ok, err := viewobject.InstantiateByKey(s.tx, s.def, key)
		if err != nil {
			return err
		}
		if !ok {
			return rejectAs(ReasonNoInstance, "vupdate: %s: no instance with key %s", s.def.Name, key)
		}
		return s.deleteInstance(inst)
	})
}

// PreviewInsertInstance translates a complete insertion without executing
// it.
func (u *Updater) PreviewInsertInstance(inst *viewobject.Instance) (*Result, error) {
	if err := u.checkInstance(inst); err != nil {
		return nil, err
	}
	return u.runPreview(func(s *session) error {
		return s.insertInstance(inst)
	})
}

// PreviewReplaceInstance translates a replacement without executing it.
func (u *Updater) PreviewReplaceInstance(oldInst, newInst *viewobject.Instance) (*Result, error) {
	if err := u.checkInstance(oldInst); err != nil {
		return nil, err
	}
	if err := u.checkInstance(newInst); err != nil {
		return nil, err
	}
	return u.runPreview(func(s *session) error {
		return s.replaceInstance(oldInst, newInst)
	})
}
