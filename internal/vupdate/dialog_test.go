package vupdate_test

import (
	"errors"
	"strings"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	. "penguin/internal/vupdate"
)

// The §6 dialog, reproduced verbatim: question sequence, order, skip
// logic, and answers.
func TestDialogSection6Transcript(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	tr, tape, err := ChooseReplacementTranslator(om, PaperDialogAnswers())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"Is replacement of tuples in an object instance allowed? <YES>",
		"The key of a tuple of relation COURSES could be modified during replacements. Do you allow this? <YES>",
		"Can we replace the key of the corresponding database tuple? <YES>",
		"The system might need to delete the old database tuple, and replace it with an existing tuple with matching key. Do you allow this? <NO>",
		"Can the relation CURRICULUM be modified during insertions (or replacements)? <YES>",
		"Can a new tuple be inserted? <YES>",
		"Can an existing tuple be modified? <YES>",
		"Can the relation DEPARTMENT be modified during insertions (or replacements)? <YES>",
		"Can a new tuple be inserted? <YES>",
		"Can an existing tuple be modified? <YES>",
		"The key of a tuple of relation GRADES could be modified during replacements. Do you allow this? <YES>",
		"Can we replace the key of the corresponding database tuple? <YES>",
		"The system might need to delete the old database tuple, and replace it with an existing tuple with matching key. Do you allow this? <NO>",
		"Can the relation STUDENT be modified during insertions (or replacements)? <YES>",
		"Can a new tuple be inserted? <YES>",
		"Can an existing tuple be modified? <YES>",
	}
	got := strings.Split(strings.TrimRight(tape.Render(), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("transcript has %d lines, want %d:\n%s", len(got), len(want), tape.Render())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got %q\nwant %q", i+1, got[i], want[i])
		}
	}
	// The resulting translator matches the paper's semantics.
	if !tr.AllowReplacement {
		t.Fatal("replacement should be allowed")
	}
	for _, rel := range []string{university.Courses, university.Grades} {
		p := tr.Island[rel]
		if !p.AllowKeyModification || !p.AllowDBKeyReplace || p.AllowMergeWithExisting {
			t.Errorf("island policy for %s = %+v", rel, p)
		}
	}
	for _, rel := range []string{university.Curriculum, university.Department, university.Student} {
		p := tr.Outside[rel]
		if !p.Modifiable || !p.AllowInsert || !p.AllowModifyExisting {
			t.Errorf("outside policy for %s = %+v", rel, p)
		}
	}
}

// Footnote 5: answering NO to "Can the relation DEPARTMENT be modified..."
// makes the two sub-questions irrelevant — they are not asked.
func TestDialogSkipLogic(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	a := ScriptedAnswerer{
		Answers: map[string]bool{
			"outside.DEPARTMENT.modifiable": false,
			"island.COURSES.merge":          false,
			"island.GRADES.merge":           false,
		},
		Default: true,
	}
	tr, tape, err := ChooseReplacementTranslator(om, a)
	if err != nil {
		t.Fatal(err)
	}
	text := tape.Render()
	if !strings.Contains(text, "Can the relation DEPARTMENT be modified during insertions (or replacements)? <NO>") {
		t.Fatalf("missing the NO gate:\n%s", text)
	}
	// 16 questions minus the two skipped DEPARTMENT sub-questions.
	if len(tape) != 14 {
		t.Fatalf("asked %d questions, want 14:\n%s", len(tape), text)
	}
	if p := tr.Outside[university.Department]; p.Modifiable || p.AllowInsert || p.AllowModifyExisting {
		t.Fatalf("DEPARTMENT policy = %+v", p)
	}
}

// Answering NO to the replacement gate skips the whole portion.
func TestDialogReplacementGate(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	a := ScriptedAnswerer{Answers: map[string]bool{"replace.allow": false}, Default: true}
	tr, tape, err := ChooseReplacementTranslator(om, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(tape) != 1 {
		t.Fatalf("asked %d questions, want 1", len(tape))
	}
	if tr.AllowReplacement {
		t.Fatal("replacement should be disallowed")
	}
}

// The key-modification gate answered NO skips its two sub-questions.
func TestDialogIslandSkip(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	a := ScriptedAnswerer{
		Answers: map[string]bool{
			"island.COURSES.keymod": false,
			"island.GRADES.merge":   false,
		},
		Default: true,
	}
	tr, tape, err := ChooseReplacementTranslator(om, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(tape) != 14 { // 16 minus the two skipped COURSES sub-questions
		t.Fatalf("asked %d questions, want 14", len(tape))
	}
	p := tr.Island[university.Courses]
	if p.AllowKeyModification || p.AllowDBKeyReplace {
		t.Fatalf("COURSES policy = %+v", p)
	}
}

// The full dialog adds the insertion and deletion portions (with one
// question per peninsula).
func TestFullDialog(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	tr, tape, err := ChooseTranslator(om, PaperDialogAnswers())
	if err != nil {
		t.Fatal(err)
	}
	text := tape.Render()
	for _, wantQ := range []string{
		"Is insertion of new object instances allowed? <YES>",
		"Is deletion of object instances allowed? <YES>",
		"Deleting an object instance requires updating the tuples of relation CURRICULUM that reference it. Do you allow this? <YES>",
		"Is replacement of tuples in an object instance allowed? <YES>",
	} {
		if !strings.Contains(text, wantQ) {
			t.Errorf("transcript missing %q:\n%s", wantQ, text)
		}
	}
	if !tr.AllowInsertion || !tr.AllowDeletion || !tr.AllowReplacement {
		t.Fatal("gates wrong")
	}
	if !tr.Peninsula[university.Curriculum].AllowUpdateOnDelete {
		t.Fatal("peninsula policy wrong")
	}
	if tr.Peninsula[university.Curriculum].OnDelete != PeninsulaDeleteTuple {
		t.Fatalf("peninsula action = %v (FK inside key should delete)",
			tr.Peninsula[university.Curriculum].OnDelete)
	}
	// Restrictive deletion gate: peninsula questions are skipped.
	a2 := ScriptedAnswerer{Answers: map[string]bool{"delete.allow": false}, Default: true}
	_, tape2, err := ChooseTranslator(om, a2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tape2.Render(), "CURRICULUM that reference it") {
		t.Fatal("peninsula question asked despite deletion NO")
	}
}

// A dialog-built translator drives real updates end to end: the paper's
// permissive translator accepts the EES345 replacement; the restrictive
// variant (DEPARTMENT not modifiable) rejects it.
func TestDialogTranslatorsEndToEnd(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)

	permissive, _, err := ChooseTranslator(om, PaperDialogAnswers())
	if err != nil {
		t.Fatal(err)
	}
	permissive.RepairInserts = true

	old, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{s("CS345")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	repl := old.Clone()
	_ = repl.Root().SetAttr(om, "CourseID", s("EES345"))
	_ = repl.Root().SetAttr(om, "DeptName", s("Engineering Economic Systems"))
	dep := repl.Root().Children(university.Department)[0]
	_ = dep.SetTuple(om, reldb.Tuple{s("Engineering Economic Systems"), reldb.Null(), reldb.Null()})

	if _, err := NewUpdater(permissive).ReplaceInstance(old, repl); err != nil {
		t.Fatalf("permissive translator rejected the §6 example: %v", err)
	}
	if !db.MustRelation(university.Department).Has(reldb.Tuple{s("Engineering Economic Systems")}) {
		t.Fatal("EES not inserted")
	}

	// Fresh database for the restrictive run.
	db2, g2 := university.MustNewSeeded()
	om2 := university.MustOmega(g2)
	restrictive, _, err := ChooseTranslator(om2, ScriptedAnswerer{
		Answers: map[string]bool{
			"outside.DEPARTMENT.modifiable": false,
			"island.COURSES.merge":          false,
			"island.GRADES.merge":           false,
		},
		Default: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	restrictive.RepairInserts = true
	old2, ok, err := viewobject.InstantiateByKey(db2, om2, reldb.Tuple{s("CS345")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	repl2 := old2.Clone()
	_ = repl2.Root().SetAttr(om2, "CourseID", s("EES345"))
	_ = repl2.Root().SetAttr(om2, "DeptName", s("Engineering Economic Systems"))
	dep2 := repl2.Root().Children(university.Department)[0]
	_ = dep2.SetTuple(om2, reldb.Tuple{s("Engineering Economic Systems"), reldb.Null(), reldb.Null()})
	if _, err := NewUpdater(restrictive).ReplaceInstance(old2, repl2); !errors.Is(err, ErrRejected) {
		t.Fatalf("restrictive translator should reject: %v", err)
	}
}

func TestInteractiveAnswerer(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	// Answer the three gates and everything else with a mix of y/yes/n,
	// including one garbage line that must be re-prompted.
	input := strings.NewReader("y\nmaybe\nyes\ny\nn\n")
	var out strings.Builder
	ia := &InteractiveAnswerer{R: input, W: &out}
	tr, tape, err := ChooseTranslator(om, ia)
	if err != nil {
		t.Fatal(err)
	}
	// insertion YES; deletion (garbage, then yes); peninsula YES;
	// replacement NO — 4 asked questions.
	if len(tape) != 4 {
		t.Fatalf("asked %d questions: %s", len(tape), tape.Render())
	}
	if !strings.Contains(out.String(), "Please answer yes or no.") {
		t.Fatal("no re-prompt for garbage input")
	}
	if tr.AllowReplacement {
		t.Fatal("replacement should be NO")
	}
	// EOF mid-dialog surfaces an error.
	ia2 := &InteractiveAnswerer{R: strings.NewReader("y\n"), W: &out}
	if _, _, err := ChooseTranslator(om, ia2); err == nil {
		t.Fatal("EOF should abort the dialog")
	}
}

func TestAnswerFunc(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	count := 0
	_, _, err := ChooseTranslator(om, AnswerFunc(func(Question) (bool, error) {
		count++
		return true, nil
	}))
	if err != nil || count == 0 {
		t.Fatalf("AnswerFunc not used: %d, %v", count, err)
	}
	wantErr := errors.New("boom")
	_, _, err = ChooseTranslator(om, AnswerFunc(func(Question) (bool, error) {
		return false, wantErr
	}))
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}
