package vupdate

import (
	"fmt"

	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/viewobject"
)

// Partial update operations manipulate a single component of a view
// object (one node of the object's tree) rather than a complete instance.
// The paper defines them in the companion thesis [4]; they reuse the
// machinery of the complete operations:
//
//   - PartialInsert adds one component tuple under an existing instance,
//     applying the VO-CI cases and the §5.2 dependency repair, and
//     verifies the new tuple is actually connected to the instance;
//   - PartialDelete removes one component tuple; only dependency-island
//     components may be deleted (removing a non-island component from an
//     instance does not delete shared base data — such requests are
//     inherently ambiguous and rejected);
//   - PartialUpdate replaces one component tuple, applying the R-case
//     rules (key replacements only inside the island, with full
//     propagation).

// PartialInsert adds one component tuple at node nodeID of the instance
// identified by pivotKey.
func (u *Updater) PartialInsert(pivotKey reldb.Tuple, nodeID string, tuple reldb.Tuple) (*Result, error) {
	return u.run(func(s *session) error {
		node, err := s.partialNode(nodeID)
		if err != nil {
			return err
		}
		if !s.tr.AllowInsertion {
			return reject("vupdate: %s: insertion is not allowed", s.def.Name)
		}
		pivotTuple, err := s.pivotTuple(pivotKey)
		if err != nil {
			return err
		}
		topo := s.tr.Topology()
		t, err := s.insertComponent(topo, node, tuple)
		if err != nil {
			return err
		}
		if t == nil {
			t = tuple
		}
		if err := s.ensureDependencies(node.Relation, t, map[string]bool{}); err != nil {
			return err
		}
		// The component must now be connected to the instance.
		ok, err := s.connectedToInstance(pivotTuple, node, t)
		if err != nil {
			return err
		}
		if !ok {
			return rejectAs(ReasonIntegrity, "vupdate: %s: the new %s tuple %s is not connected to instance %s",
				s.def.Name, nodeID, t, pivotKey)
		}
		return nil
	})
}

// PartialDelete removes the component tuple with the given key at node
// nodeID of the instance identified by pivotKey. Only dependency-island
// components can be deleted.
func (u *Updater) PartialDelete(pivotKey reldb.Tuple, nodeID string, key reldb.Tuple) (*Result, error) {
	return u.run(func(s *session) error {
		node, err := s.partialNode(nodeID)
		if err != nil {
			return err
		}
		if !s.tr.AllowDeletion {
			return reject("vupdate: %s: deletion is not allowed", s.def.Name)
		}
		topo := s.tr.Topology()
		if !topo.InIsland(nodeID) {
			return rejectAs(ReasonAmbiguousKey, "vupdate: %s: partial deletion of %s components is ambiguous (outside the dependency island)",
				s.def.Name, nodeID)
		}
		pivotTuple, err := s.pivotTuple(pivotKey)
		if err != nil {
			return err
		}
		rel, err := s.relation(node.Relation)
		if err != nil {
			return err
		}
		tuple, ok := rel.Get(key)
		if !ok {
			return fmt.Errorf("vupdate: %s: no %s tuple with key %s: %w",
				s.def.Name, nodeID, key, reldb.ErrNoSuchTuple)
		}
		// The tuple must belong to this instance.
		connected, err := s.connectedToInstance(pivotTuple, node, tuple)
		if err != nil {
			return err
		}
		if !connected {
			return rejectAs(ReasonNoInstance, "vupdate: %s: %s tuple %s does not belong to instance %s",
				s.def.Name, nodeID, key, pivotKey)
		}
		if node == s.def.Root() {
			return reject("vupdate: %s: deleting the pivot component is a complete deletion; use DeleteByKey",
				s.def.Name)
		}
		return s.deleteCascade(node.Relation, tuple, map[string]bool{})
	})
}

// PartialUpdate replaces one component tuple at node nodeID of the
// instance identified by pivotKey.
func (u *Updater) PartialUpdate(pivotKey reldb.Tuple, nodeID string, oldTuple, newTuple reldb.Tuple) (*Result, error) {
	return u.run(func(s *session) error {
		node, err := s.partialNode(nodeID)
		if err != nil {
			return err
		}
		if !s.tr.AllowReplacement {
			return reject("vupdate: %s: replacement is not allowed", s.def.Name)
		}
		pivotTuple, err := s.pivotTuple(pivotKey)
		if err != nil {
			return err
		}
		schema := s.schemaOf(node)
		if err := schema.CheckTuple(newTuple); err != nil {
			return fmt.Errorf("vupdate: %s: component %s: %w", s.def.Name, nodeID, err)
		}
		connected, err := s.connectedToInstance(pivotTuple, node, oldTuple)
		if err != nil {
			return err
		}
		if !connected {
			return rejectAs(ReasonNoInstance, "vupdate: %s: %s tuple %s does not belong to instance %s",
				s.def.Name, nodeID, schema.KeyOf(oldTuple), pivotKey)
		}
		topo := s.tr.Topology()
		rc := &replaceCtx{s: s, topo: topo, keyMap: make(map[string]map[string]keyChange)}
		projIdx, err := schema.Indices(node.Attrs)
		if err != nil {
			return err
		}
		oldKey, newKey := schema.KeyOf(oldTuple), schema.KeyOf(newTuple)
		switch {
		case projectedEqual(oldTuple, newTuple, projIdx):
			return nil
		case oldKey.Equal(newKey):
			if err := rc.replaceSameKey(node, schema, oldKey, newTuple, projIdx); err != nil {
				return err
			}
		default:
			switch topo.Class[node.ID] {
			case ClassPivot, ClassIsland:
				if err := rc.replaceIslandKey(node, schema, oldTuple, newTuple, projIdx); err != nil {
					return err
				}
			case ClassReferenced:
				if err := rc.insertOrMendOutside(node, schema, newTuple, projIdx); err != nil {
					return err
				}
			default:
				return rejectAs(ReasonAmbiguousKey, "vupdate: %s: changes to the key of %s tuples are precluded",
					s.def.Name, nodeID)
			}
		}
		if err := rc.propagateKeyChanges(); err != nil {
			return err
		}
		seen := make(map[string]bool)
		for _, rt := range rc.touched {
			if err := s.ensureDependencies(rt.rel, rt.tuple, seen); err != nil {
				return err
			}
		}
		return nil
	})
}

// partialNode resolves a node ID for a partial operation.
func (s *session) partialNode(nodeID string) (*viewobject.Node, error) {
	node, ok := s.def.Node(nodeID)
	if !ok {
		return nil, fmt.Errorf("vupdate: %s has no node %s", s.def.Name, nodeID)
	}
	return node, nil
}

// pivotTuple fetches the pivot tuple of the addressed instance.
func (s *session) pivotTuple(pivotKey reldb.Tuple) (reldb.Tuple, error) {
	rel, err := s.relation(s.def.Pivot())
	if err != nil {
		return nil, err
	}
	t, ok := rel.Get(pivotKey)
	if !ok {
		return nil, fmt.Errorf("vupdate: %s: no instance with key %s: %w",
			s.def.Name, pivotKey, reldb.ErrNoSuchTuple)
	}
	return t, nil
}

// connectedToInstance reports whether tuple appears at node when the
// instance rooted at pivotTuple is assembled: it traverses the
// concatenated connection path from the pivot to the node and looks for
// the tuple's key.
func (s *session) connectedToInstance(pivotTuple reldb.Tuple, node *viewobject.Node, tuple reldb.Tuple) (bool, error) {
	if node == s.def.Root() {
		rootSchema := s.schemaOf(s.def.Root())
		return rootSchema.KeyOf(pivotTuple).Equal(rootSchema.KeyOf(tuple)), nil
	}
	var full []structural.Edge
	for n := node; n != s.def.Root(); n = n.Parent() {
		full = append(append([]structural.Edge(nil), n.Path...), full...)
	}
	reached, err := viewobject.TraversePath(s.tx, pivotTuple, full)
	if err != nil {
		return false, err
	}
	schema := s.schemaOf(node)
	want := schema.EncodeKeyOf(tuple)
	for _, rt := range reached {
		if schema.EncodeKeyOf(rt) == want {
			return true, nil
		}
	}
	return false, nil
}
