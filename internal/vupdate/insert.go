package vupdate

import (
	"fmt"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/viewobject"
)

// InsertInstance translates and executes a complete insertion (algorithm
// VO-CI, §5.2): adding a fully specified view-object instance to the
// database. Per projection tuple, the three cases of VO-CI apply:
//
//	case 1 — an identical tuple exists: reject inside the dependency
//	         island, do nothing outside;
//	case 2 — the key is free: insert;
//	case 3 — the key exists with differing non-key values: reject inside
//	         the island, replace outside (when the translator allows it).
//
// Tuples are compared on the node's projected attributes; inserted tuples
// are the instance's full-width tuples (hand-built instances carry null
// for attributes projected out — the paper's "extension" point). After
// translation, global consistency is restored by the recursive dependency
// repair of §5.2.
func (u *Updater) InsertInstance(inst *viewobject.Instance) (*Result, error) {
	if err := u.checkInstance(inst); err != nil {
		return nil, err
	}
	return u.run(func(s *session) error {
		return s.insertInstance(inst)
	})
}

func (s *session) insertInstance(inst *viewobject.Instance) error {
	if !s.tr.AllowInsertion {
		return reject("vupdate: %s: insertion of object instances is not allowed", s.def.Name)
	}
	if err := s.step(obs.StepLocalValidate, func() error {
		return validateConnections(s.def, inst.Root())
	}); err != nil {
		return err
	}
	topo := s.tr.Topology()
	var touched []relTuple
	if err := s.step(obs.StepTranslate, func() error {
		// Walk the definition preorder so owners precede owned tuples.
		for _, node := range s.def.Nodes() {
			for _, in := range inst.NodesAt(node.ID) {
				t, err := s.insertComponent(topo, node, in.Tuple())
				if err != nil {
					return err
				}
				if t != nil {
					touched = append(touched, relTuple{node.Relation, t})
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// Global validation (§5.2): dependency repair for every inserted or
	// replaced tuple, recursively.
	return s.step(obs.StepGlobalValidate, func() error {
		seen := make(map[string]bool)
		for _, rt := range touched {
			if err := s.ensureDependencies(rt.rel, rt.tuple, seen); err != nil {
				return err
			}
		}
		return nil
	})
}

type relTuple struct {
	rel   string
	tuple reldb.Tuple
}

// insertComponent applies the three VO-CI cases to one component tuple.
// It returns the tuple now present in the database when the database was
// modified, and nil when the case required no operation.
func (s *session) insertComponent(topo *Topology, node *viewobject.Node, tuple reldb.Tuple) (reldb.Tuple, error) {
	rel, err := s.relation(node.Relation)
	if err != nil {
		return nil, err
	}
	schema := rel.Schema()
	if err := schema.CheckTuple(tuple); err != nil {
		return nil, fmt.Errorf("vupdate: %s: component %s: %w", s.def.Name, node.ID, err)
	}
	inIsland := topo.InIsland(node.ID)
	key := schema.KeyOf(tuple)
	existing, exists := rel.Get(key)

	projIdx, err := schema.Indices(node.Attrs)
	if err != nil {
		return nil, err
	}

	switch {
	case exists && projectedEqual(tuple, existing, projIdx):
		// CASE 1: an identical tuple exists.
		if inIsland {
			return nil, rejectAs(ReasonConflict, "vupdate: %s: identical %s tuple %s already exists in the dependency island",
				s.def.Name, node.ID, key)
		}
		return nil, nil
	case !exists:
		// CASE 2: the key is free.
		if !inIsland {
			p := s.tr.outsidePolicy(node.ID)
			if !p.Modifiable || !p.AllowInsert {
				return nil, reject("vupdate: %s: the application is not allowed to insert tuples in %s",
					s.def.Name, node.Relation)
			}
		}
		if err := s.insert(node.Relation, tuple); err != nil {
			return nil, err
		}
		return tuple, nil
	default:
		// CASE 3: the key exists with differing values.
		if inIsland {
			return nil, rejectAs(ReasonConflict, "vupdate: %s: %s tuple with key %s exists with conflicting values",
				s.def.Name, node.ID, key)
		}
		p := s.tr.outsidePolicy(node.ID)
		if !p.Modifiable || !p.AllowModifyExisting {
			return nil, reject("vupdate: %s: the application is not allowed to modify tuples of %s",
				s.def.Name, node.Relation)
		}
		// Merge the projected attributes into the existing tuple so
		// attributes outside the projection keep their stored values.
		merged := existing.Clone()
		for _, j := range projIdx {
			merged[j] = tuple[j]
		}
		if err := s.replace(node.Relation, key, merged); err != nil {
			return nil, err
		}
		return merged, nil
	}
}

// projectedEqual compares two full-width tuples on the projected indices.
func projectedEqual(a, b reldb.Tuple, idx []int) bool {
	for _, j := range idx {
		if !a[j].Equal(b[j]) {
			return false
		}
	}
	return true
}
