package vupdate

import (
	"fmt"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/viewobject"
)

// DeleteByKey translates and executes a complete deletion (algorithm
// VO-CD, §5.1) of the instance whose object key is key. The instance is
// assembled inside the transaction, so the deletion always sees current
// data.
func (u *Updater) DeleteByKey(key reldb.Tuple) (*Result, error) {
	return u.run(func(s *session) error {
		var inst *viewobject.Instance
		if err := s.step(obs.StepLocalValidate, func() error {
			var ok bool
			var err error
			inst, ok, err = viewobject.InstantiateByKeyOp(s.tx, s.def, key, s.op)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("vupdate: %s: no instance with key %s: %w",
					s.def.Name, key, reldb.ErrNoSuchTuple)
			}
			return nil
		}); err != nil {
			return err
		}
		return s.deleteInstance(inst)
	})
}

// DeleteInstance translates and executes a complete deletion (VO-CD) of a
// fully specified instance. The instance's pivot tuple must still exist.
func (u *Updater) DeleteInstance(inst *viewobject.Instance) (*Result, error) {
	if err := u.checkInstance(inst); err != nil {
		return nil, err
	}
	return u.run(func(s *session) error {
		return s.deleteInstance(inst)
	})
}

// deleteInstance implements VO-CD:
//
//   - isolate the dependency island;
//   - delete the matching tuples of every island projection (the cascade
//     below reaches every island component from the pivot, plus owned and
//     subset tuples outside the object — the global maintenance of §5.1);
//   - for each referencing peninsula, update the foreign keys of matching
//     tuples per the translator (replacement, set-null, deletion, or
//     rollback when not allowed);
//   - foreign-key maintenance applies likewise to out-of-object relations
//     referencing any deleted tuple.
func (s *session) deleteInstance(inst *viewobject.Instance) error {
	if !s.tr.AllowDeletion {
		return reject("vupdate: %s: deletion of object instances is not allowed", s.def.Name)
	}
	pivotRel, err := s.relation(s.def.Pivot())
	if err != nil {
		return err
	}
	pivotKey := inst.Key()
	pivotTuple, ok := pivotRel.Get(pivotKey)
	if !ok {
		return fmt.Errorf("vupdate: %s: pivot tuple %s no longer exists: %w",
			s.def.Name, pivotKey, reldb.ErrNoSuchTuple)
	}
	// The cascade interleaves translation (island deletions) with global
	// maintenance (peninsula and out-of-object foreign keys); the two are
	// timed as one translate step.
	return s.step(obs.StepTranslate, func() error {
		deleted := make(map[string]bool)
		if err := s.deleteCascade(s.def.Pivot(), pivotTuple, deleted); err != nil {
			return err
		}
		// Island components reached through paths with excluded intermediate
		// relations are not covered by the connection cascade from the pivot
		// alone; delete them explicitly.
		topo := s.tr.Topology()
		for _, nodeID := range topo.Island() {
			for _, in := range inst.NodesAt(nodeID) {
				node := in.Node()
				rel, err := s.relation(node.Relation)
				if err != nil {
					return err
				}
				tuple := in.Tuple()
				if !rel.Has(rel.Schema().KeyOf(tuple)) {
					continue // already deleted by the cascade
				}
				if err := s.deleteCascade(node.Relation, tuple, deleted); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// deleteCascade deletes one tuple and maintains global integrity:
// incoming references are updated per the peninsula policies (or the
// key-aware default for out-of-object relations), and owned and subset
// tuples are deleted recursively.
func (s *session) deleteCascade(relName string, tuple reldb.Tuple, deleted map[string]bool) error {
	rel, err := s.relation(relName)
	if err != nil {
		return err
	}
	schema := rel.Schema()
	key := schema.KeyOf(tuple)
	ek := relName + "\x00" + schema.EncodeKeyOf(tuple)
	if deleted[ek] {
		return nil
	}
	deleted[ek] = true
	if !rel.Has(key) {
		return nil // a diamond cascade already removed it
	}

	// Incoming references: peninsulas and other referencing relations.
	for _, c := range s.g.Incoming(relName) {
		if c.Type != structural.Reference {
			continue
		}
		refs, err := structural.ConnectedVia(s.tx, structural.Edge{Conn: c, Forward: false}, tuple)
		if err != nil {
			return err
		}
		if len(refs) == 0 {
			continue
		}
		policy := s.referencingPolicy(c.From)
		switch policy.OnDelete {
		case PeninsulaRestrict:
			return reject("vupdate: %s: deletion touches %s through %s, which the translator does not allow",
				s.def.Name, c.From, c)
		case PeninsulaDeleteTuple:
			for _, rt := range refs {
				if err := s.deleteCascade(c.From, rt, deleted); err != nil {
					return err
				}
			}
		case PeninsulaSetNull, PeninsulaReplaceDefault:
			if err := s.rewriteReferencing(c, refs, policy); err != nil {
				return err
			}
		}
	}

	// Outgoing ownership and subset connections: cascade.
	for _, c := range s.g.Outgoing(relName) {
		if c.Type != structural.Ownership && c.Type != structural.Subset {
			continue
		}
		deps, err := structural.ConnectedVia(s.tx, structural.Edge{Conn: c, Forward: true}, tuple)
		if err != nil {
			return err
		}
		for _, dt := range deps {
			if err := s.deleteCascade(c.To, dt, deleted); err != nil {
				return err
			}
		}
	}

	return s.delete(relName, key)
}

// referencingPolicy resolves the deletion-time policy for a relation that
// references a deleted tuple: the translator's peninsula policy when the
// relation is an object node classified as a peninsula, and the key-aware
// default (delete when the foreign key is part of the key, set-null
// otherwise) for everything else.
func (s *session) referencingPolicy(relName string) PeninsulaPolicy {
	topo := s.tr.Topology()
	for _, id := range topo.Peninsulas() {
		n, _ := s.def.Node(id)
		if n.Relation == relName {
			p := s.tr.peninsulaPolicy(id)
			if !p.AllowUpdateOnDelete {
				return PeninsulaPolicy{OnDelete: PeninsulaRestrict}
			}
			return p
		}
	}
	// Out-of-object referencing relation: global integrity maintenance.
	rel, err := s.relation(relName)
	if err != nil {
		return PeninsulaPolicy{OnDelete: PeninsulaRestrict}
	}
	schema := rel.Schema()
	for _, c := range s.g.Outgoing(relName) {
		if c.Type != structural.Reference {
			continue
		}
		for _, a := range c.FromAttrs {
			if schema.IsKeyName(a) {
				return PeninsulaPolicy{AllowUpdateOnDelete: true, OnDelete: PeninsulaDeleteTuple}
			}
		}
	}
	return PeninsulaPolicy{AllowUpdateOnDelete: true, OnDelete: PeninsulaSetNull}
}

// rewriteReferencing rewrites the referencing attributes of refs (tuples
// of c.From) to null or to the policy's default values.
func (s *session) rewriteReferencing(c *structural.Connection, refs []reldb.Tuple, policy PeninsulaPolicy) error {
	fromRel, err := s.relation(c.From)
	if err != nil {
		return err
	}
	schema := fromRel.Schema()
	idx, err := schema.Indices(c.FromAttrs)
	if err != nil {
		return err
	}
	if policy.OnDelete == PeninsulaReplaceDefault && len(policy.Default) != len(idx) {
		return fmt.Errorf("vupdate: peninsula default for %s has %d values, want %d",
			c.From, len(policy.Default), len(idx))
	}
	for _, rt := range refs {
		nt := rt.Clone()
		for i, j := range idx {
			if policy.OnDelete == PeninsulaSetNull {
				nt[j] = reldb.Null()
			} else {
				nt[j] = policy.Default[i]
			}
		}
		if err := s.replace(c.From, schema.KeyOf(rt), nt); err != nil {
			return fmt.Errorf("vupdate: updating %s for deletion: %w", c.From, err)
		}
	}
	return nil
}
