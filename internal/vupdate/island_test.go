package vupdate_test

import (
	"strings"
	"testing"

	"penguin/internal/university"
	"penguin/internal/viewobject"
	. "penguin/internal/vupdate"
)

// §5's running example: for ω, the dependency island is {COURSES, GRADES}
// and the only referencing peninsula is CURRICULUM.
func TestAnalyzeOmega(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	topo := Analyze(om)

	if got := strings.Join(topo.Island(), ","); got != "COURSES,GRADES" {
		t.Fatalf("island = %s, want COURSES,GRADES", got)
	}
	if got := strings.Join(topo.Peninsulas(), ","); got != "CURRICULUM" {
		t.Fatalf("peninsulas = %s, want CURRICULUM", got)
	}
	wantClass := map[string]NodeClass{
		university.Courses:    ClassPivot,
		university.Grades:     ClassIsland,
		university.Curriculum: ClassPeninsula,
		university.Department: ClassReferenced, // COURSES --> DEPARTMENT
		university.Student:    ClassOutside,    // via inverse ownership
	}
	for id, want := range wantClass {
		if got := topo.Class[id]; got != want {
			t.Errorf("class[%s] = %s, want %s", id, got, want)
		}
	}
	if !topo.InIsland(university.Courses) || !topo.InIsland(university.Grades) {
		t.Fatal("InIsland wrong for island members")
	}
	if topo.InIsland(university.Student) || topo.InIsland("NOPE") {
		t.Fatal("InIsland wrong for outsiders")
	}
	if got := strings.Join(topo.NonIsland(), ","); got != "CURRICULUM,DEPARTMENT,STUDENT" {
		t.Fatalf("NonIsland = %s", got)
	}
}

// ω′ has no island beyond the pivot: both components attach through paths
// involving inverse connections.
func TestAnalyzeOmegaPrime(t *testing.T) {
	_, g := university.New()
	op := university.MustOmegaPrime(g)
	topo := Analyze(op)
	if got := strings.Join(topo.Island(), ","); got != "COURSES" {
		t.Fatalf("ω′ island = %s, want COURSES only", got)
	}
	// STUDENT owns GRADES which is... STUDENT has no reference into the
	// island; FACULTY neither. Both are plain outside relations.
	if topo.Class[university.Student] != ClassOutside {
		t.Fatalf("STUDENT class = %s", topo.Class[university.Student])
	}
	if topo.Class[university.Faculty] != ClassOutside {
		t.Fatalf("FACULTY class = %s", topo.Class[university.Faculty])
	}
	if len(topo.Peninsulas()) != 0 {
		t.Fatalf("ω′ peninsulas = %v", topo.Peninsulas())
	}
}

// A deeper island: DEPARTMENT as pivot owns CURRICULUM, so the island
// spans both. COURSES references DEPARTMENT directly, which makes it a
// referencing peninsula (Definition 5.2) even though CURRICULUM also
// references it.
func TestAnalyzeDepartmentObject(t *testing.T) {
	_, g := university.New()
	m := viewobject.DefaultMetric()
	def, err := viewobject.Define(g, "dept-object", university.Department, m, map[string][]string{
		university.Curriculum: nil,
		university.Courses:    nil,
		university.People:     nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo := Analyze(def)
	if !topo.InIsland(university.Curriculum) {
		t.Fatalf("CURRICULUM should be in DEPARTMENT's island; classes: %v", topo.Class)
	}
	if topo.Class[university.Courses] != ClassPeninsula {
		t.Fatalf("COURSES class = %s, want peninsula (it references the pivot)", topo.Class[university.Courses])
	}
	// PEOPLE references DEPARTMENT (the pivot): a peninsula.
	if topo.Class[university.People] != ClassPeninsula {
		t.Fatalf("PEOPLE class = %s, want peninsula", topo.Class[university.People])
	}
}

func TestNodeClassString(t *testing.T) {
	want := map[NodeClass]string{
		ClassPivot: "pivot", ClassIsland: "island", ClassPeninsula: "peninsula",
		ClassReferenced: "referenced", ClassOutside: "outside",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if NodeClass(99).String() != "unknown" {
		t.Error("unknown class string")
	}
}
