package vupdate_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	. "penguin/internal/vupdate"
)

// databaseFingerprint captures the exact database contents: every
// relation's schema, index declarations, and sorted rows — but not the
// generation counter, which advances on every commit (snapshots carry
// it since v2, so raw snapshot bytes would differ across any
// do-then-undo pair).
func databaseFingerprint(t *testing.T, db *reldb.Database) string {
	t.Helper()
	rtx := db.BeginRead()
	defer rtx.Close()
	var buf bytes.Buffer
	for _, name := range rtx.Names() {
		rel := rtx.MustRelation(name)
		fmt.Fprintf(&buf, "%s %v %v\n", name, rel.Schema(), rel.IndexNames())
		var rows []string
		rel.Scan(func(tu reldb.Tuple) bool {
			rows = append(rows, tu.Encode())
			return true
		})
		sort.Strings(rows)
		for _, row := range rows {
			fmt.Fprintf(&buf, "  %q\n", row)
		}
	}
	return buf.String()
}

// Property: every committed view-object update leaves the database with
// zero structural-model violations, and every rejected update leaves it
// bit-for-bit unchanged. Exercised with a long random mix of complete
// insertions, deletions, replacements, and partial updates under a
// randomly restrictive translator.
func TestSoakRandomUpdateMixKeepsIntegrity(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	in := &structural.Integrity{G: g}
	rng := rand.New(rand.NewSource(42))

	// A translator with random restrictions re-chosen every 50 steps.
	makeTranslator := func() *Updater {
		tr := PermissiveTranslator(om)
		if rng.Intn(4) == 0 {
			tr.Outside[university.Department] = OutsidePolicy{Modifiable: false}
		}
		if rng.Intn(4) == 0 {
			p := tr.Island[university.Courses]
			p.AllowDBKeyReplace = false
			tr.Island[university.Courses] = p
		}
		if rng.Intn(4) == 0 {
			tr.Peninsula[university.Curriculum] = PeninsulaPolicy{AllowUpdateOnDelete: false}
		}
		if rng.Intn(6) == 0 {
			tr.RepairInserts = false
		}
		return NewUpdater(tr)
	}
	u := makeTranslator()

	liveCourses := func() []string {
		var ids []string
		db.MustRelation(university.Courses).Scan(func(tu reldb.Tuple) bool {
			ids = append(ids, tu[0].MustString())
			return true
		})
		return ids
	}

	commits, rejections := 0, 0
	for step := 0; step < 400; step++ {
		if step%50 == 0 {
			u = makeTranslator()
		}
		before := databaseFingerprint(t, db)
		var err error
		switch rng.Intn(5) {
		case 0: // complete insertion of a fresh course
			id := fmt.Sprintf("R%04d", step)
			inst := viewobject.MustNewInstance(om, reldb.Tuple{
				s(id), s("Random"), s("Computer Science"), iv(int64(rng.Intn(5) + 1)), s("graduate"),
			})
			for n := 0; n < rng.Intn(3); n++ {
				pid := int64(rng.Intn(8) + 1)
				gr, aerr := inst.Root().AddChild(om, university.Grades,
					reldb.Tuple{s(id), iv(pid), s("Aut91"), s("B")})
				if aerr != nil {
					continue
				}
				_, _ = gr.AddChild(om, university.Student, reldb.Tuple{iv(pid), s("BS"), iv(1)})
			}
			_, err = u.InsertInstance(inst)
		case 1: // complete deletion of a random course
			ids := liveCourses()
			if len(ids) == 0 {
				continue
			}
			_, err = u.DeleteByKey(reldb.Tuple{s(ids[rng.Intn(len(ids))])})
		case 2: // replacement: rename a random course
			ids := liveCourses()
			if len(ids) == 0 {
				continue
			}
			key := reldb.Tuple{s(ids[rng.Intn(len(ids))])}
			old, ok, ierr := viewobject.InstantiateByKey(db, om, key)
			if ierr != nil || !ok {
				t.Fatal(ierr)
			}
			repl := old.Clone()
			err = repl.Root().SetAttr(om, "CourseID", s(fmt.Sprintf("X%04d", step)))
			if err == nil {
				_, err = u.ReplaceInstance(old, repl)
			}
		case 3: // partial insert of a grade
			ids := liveCourses()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			_, err = u.PartialInsert(reldb.Tuple{s(id)}, university.Grades,
				reldb.Tuple{s(id), iv(int64(rng.Intn(50) + 100)), s("Win92"), s("C")})
		case 4: // non-key replacement of a random course's title
			ids := liveCourses()
			if len(ids) == 0 {
				continue
			}
			key := reldb.Tuple{s(ids[rng.Intn(len(ids))])}
			old, ok, ierr := viewobject.InstantiateByKey(db, om, key)
			if ierr != nil || !ok {
				t.Fatal(ierr)
			}
			repl := old.Clone()
			err = repl.Root().SetAttr(om, "Title", s(fmt.Sprintf("Title %d", step)))
			if err == nil {
				_, err = u.ReplaceInstance(old, repl)
			}
		}
		switch {
		case err == nil:
			commits++
			vs, aerr := in.Audit(db)
			if aerr != nil {
				t.Fatal(aerr)
			}
			if len(vs) != 0 {
				t.Fatalf("step %d: committed update left violations:\n%s",
					step, structural.FormatViolations(vs))
			}
		case errors.Is(err, ErrRejected) || errors.Is(err, reldb.ErrNoSuchTuple) || errors.Is(err, reldb.ErrDuplicateKey):
			rejections++
			if after := databaseFingerprint(t, db); after != before {
				t.Fatalf("step %d: rejected update mutated the database (%v)", step, err)
			}
		default:
			t.Fatalf("step %d: unexpected error: %v", step, err)
		}
	}
	if commits < 50 || rejections < 10 {
		t.Fatalf("soak mix too one-sided: %d commits, %d rejections", commits, rejections)
	}
	t.Logf("soak: %d commits, %d rejections, %d rows", commits, rejections, db.TotalRows())
}

// Property: insert-then-instantiate round-trips — a fully specified
// instance inserted with VO-CI and re-assembled by its key matches the
// original on every island component and on the existential components
// it carried.
func TestInsertInstantiateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		db, g := university.MustNewSeeded()
		om := university.MustOmega(g)
		u := NewUpdater(PermissiveTranslator(om))

		id := fmt.Sprintf("RT%03d", trial)
		nGrades := rng.Intn(5)
		inst := viewobject.MustNewInstance(om, reldb.Tuple{
			s(id), s("Round Trip"), s("Computer Science"), iv(int64(rng.Intn(4) + 1)), s("graduate"),
		})
		wantPIDs := map[int64]bool{}
		for n := 0; n < nGrades; n++ {
			pid := int64(rng.Intn(5) + 1)
			if wantPIDs[pid] {
				continue
			}
			wantPIDs[pid] = true
			gr := inst.Root().MustAddChild(om, university.Grades,
				reldb.Tuple{s(id), iv(pid), s("Aut91"), s("A")})
			stu, _ := db.MustRelation(university.Student).Get(reldb.Tuple{iv(pid)})
			gr.MustAddChild(om, university.Student, stu)
		}
		if _, err := u.InsertInstance(inst); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{s(id)})
		if err != nil || !ok {
			t.Fatalf("trial %d: %v %v", trial, ok, err)
		}
		if !got.Root().Tuple().Equal(inst.Root().Tuple()) {
			t.Fatalf("trial %d: pivot differs: %v vs %v", trial, got.Root().Tuple(), inst.Root().Tuple())
		}
		gotGrades := got.NodesAt(university.Grades)
		if len(gotGrades) != len(wantPIDs) {
			t.Fatalf("trial %d: %d grades, want %d", trial, len(gotGrades), len(wantPIDs))
		}
		for _, gr := range gotGrades {
			pid := gr.Tuple()[1].MustInt()
			if !wantPIDs[pid] {
				t.Fatalf("trial %d: unexpected grade PID %d", trial, pid)
			}
			students := gr.Children(university.Student)
			if len(students) != 1 || students[0].Tuple()[0].MustInt() != pid {
				t.Fatalf("trial %d: student mismatch under grade %d", trial, pid)
			}
		}
	}
}

// Property: delete-then-audit over every course in a scaled database —
// deleting all instances one by one drains the island relations
// completely and never violates integrity.
func TestDeleteAllInstancesDrainsIsland(t *testing.T) {
	db, g := university.New()
	err := university.SeedScaled(db, university.ScaleSpec{
		Departments: 3, StudentsPerDept: 10, CoursesPerDept: 5,
		GradesPerCourse: 4, DegreesPerDept: 2, CoursesPerDegree: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	om := university.MustOmega(g)
	u := NewUpdater(PermissiveTranslator(om))
	in := &structural.Integrity{G: g}

	var ids []string
	db.MustRelation(university.Courses).Scan(func(tu reldb.Tuple) bool {
		ids = append(ids, tu[0].MustString())
		return true
	})
	for _, id := range ids {
		if _, err := u.DeleteByKey(reldb.Tuple{s(id)}); err != nil {
			t.Fatalf("deleting %s: %v", id, err)
		}
	}
	if n := db.MustRelation(university.Courses).Count(); n != 0 {
		t.Fatalf("courses left: %d", n)
	}
	if n := db.MustRelation(university.Grades).Count(); n != 0 {
		t.Fatalf("grades left: %d", n)
	}
	if n := db.MustRelation(university.Curriculum).Count(); n != 0 {
		t.Fatalf("curriculum left: %d", n)
	}
	// Students, people, departments survive.
	if db.MustRelation(university.Student).Count() == 0 ||
		db.MustRelation(university.Department).Count() == 0 {
		t.Fatal("non-island relations were drained")
	}
	vs, err := in.Audit(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("violations:\n%s", structural.FormatViolations(vs))
	}
}

// Property: replacement is invertible — renaming a course A→B and then
// B→A restores the original database exactly.
func TestReplaceIsInvertible(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	u := NewUpdater(PermissiveTranslator(om))
	before := databaseFingerprint(t, db)

	rename := func(from, to string) {
		t.Helper()
		old, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{s(from)})
		if err != nil || !ok {
			t.Fatalf("instance %s: %v %v", from, ok, err)
		}
		repl := old.Clone()
		if err := repl.Root().SetAttr(om, "CourseID", s(to)); err != nil {
			t.Fatal(err)
		}
		if _, err := u.ReplaceInstance(old, repl); err != nil {
			t.Fatalf("rename %s->%s: %v", from, to, err)
		}
	}
	rename("CS345", "TMP999")
	rename("TMP999", "CS345")
	if after := databaseFingerprint(t, db); after != before {
		t.Fatal("A->B->A did not restore the database")
	}
}

// Failure injection: a replacement that fails at the LAST component (a
// frozen STUDENT modification) must undo the island key replacements that
// already executed.
func TestMidTranslationFailureRollsBackEverything(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	tr := PermissiveTranslator(om)
	tr.Outside[university.Student] = OutsidePolicy{Modifiable: false}
	u := NewUpdater(tr)
	before := databaseFingerprint(t, db)

	old, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{s("CS345")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	repl := old.Clone()
	// Pivot key change (succeeds, replaces COURSES + GRADES + CURRICULUM)
	// plus a STUDENT year change (rejected) — the rejection arrives after
	// the island work is done.
	_ = repl.Root().SetAttr(om, "CourseID", s("EES345"))
	grades := repl.Root().Children(university.Grades)
	st := grades[len(grades)-1].Children(university.Student)[0]
	_ = st.SetAttr(om, "Year", iv(7))

	_, err = u.ReplaceInstance(old, repl)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
	if after := databaseFingerprint(t, db); after != before {
		t.Fatal("partial translation survived the rollback")
	}
}
