package vupdate_test

import (
	"errors"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	. "penguin/internal/vupdate"
)

func TestPreviewDeleteLeavesDatabaseUntouched(t *testing.T) {
	db, _, _, u := fixture(t)
	before := databaseFingerprint(t, db)
	res, err := u.PreviewDeleteByKey(reldb.Tuple{s("CS345")})
	if err != nil {
		t.Fatal(err)
	}
	// Same plan as the real deletion: 1 course + 3 grades + 2 curricula.
	if res.Count(OpDelete) != 6 {
		t.Fatalf("previewed deletes = %d\n%s", res.Count(OpDelete), res)
	}
	if databaseFingerprint(t, db) != before {
		t.Fatal("preview mutated the database")
	}
	// The real deletion then performs exactly the previewed plan.
	real, err := u.DeleteByKey(reldb.Tuple{s("CS345")})
	if err != nil {
		t.Fatal(err)
	}
	if real.String() != res.String() {
		t.Fatalf("plans differ:\npreview:\n%s\nreal:\n%s", res, real)
	}
}

func TestPreviewInsertAndReplace(t *testing.T) {
	db, _, om, u := fixture(t)
	before := databaseFingerprint(t, db)

	inst := viewobject.MustNewInstance(om, reldb.Tuple{
		s("CS777"), s("Preview"), s("Computer Science"), iv(3), s("graduate"),
	})
	res, err := u.PreviewInsertInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(OpInsert) != 1 {
		t.Fatalf("previewed inserts:\n%s", res)
	}
	if databaseFingerprint(t, db) != before {
		t.Fatal("insert preview mutated the database")
	}

	old, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{s("CS345")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	repl := old.Clone()
	_ = repl.Root().SetAttr(om, "CourseID", s("EES345"))
	_ = repl.Root().SetAttr(om, "DeptName", s("Engineering Economic Systems"))
	dep := repl.Root().Children(university.Department)[0]
	_ = dep.SetTuple(om, reldb.Tuple{s("Engineering Economic Systems"), reldb.Null(), reldb.Null()})
	res, err = u.PreviewReplaceInstance(old, repl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(OpInsert) != 1 || res.Count(OpReplace) != 6 {
		t.Fatalf("previewed replacement plan:\n%s", res)
	}
	if databaseFingerprint(t, db) != before {
		t.Fatal("replace preview mutated the database")
	}
	// The caller's instances are untouched too.
	if !db.MustRelation(university.Courses).Has(reldb.Tuple{s("CS345")}) {
		t.Fatal("CS345 gone after preview")
	}
}

func TestPreviewRejections(t *testing.T) {
	db, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.AllowReplacement = false
	u := NewUpdater(tr)
	old, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{s("CS345")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if _, err := u.PreviewReplaceInstance(old, old.Clone()); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	if _, err := u.PreviewDeleteByKey(reldb.Tuple{s("NOPE")}); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	// Foreign instances rejected before any transaction starts.
	_, g2 := university.MustNewSeeded()
	om2 := university.MustOmega(g2)
	foreign := viewobject.MustNewInstance(om2, reldb.Tuple{
		s("X"), reldb.Null(), reldb.Null(), reldb.Null(), reldb.Null(),
	})
	if _, err := u.PreviewInsertInstance(foreign); err == nil {
		t.Fatal("foreign instance accepted")
	}
}
