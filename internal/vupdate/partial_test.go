package vupdate_test

import (
	"errors"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/university"
	. "penguin/internal/vupdate"
)

func TestPartialInsertGrade(t *testing.T) {
	db, g, _, u := fixture(t)
	// Enroll student 2 in CS345.
	res, err := u.PartialInsert(reldb.Tuple{s("CS345")}, university.Grades,
		reldb.Tuple{s("CS345"), iv(2), s("Win91"), s("B")})
	if err != nil {
		t.Fatal(err)
	}
	if !db.MustRelation(university.Grades).Has(reldb.Tuple{s("CS345"), iv(2)}) {
		t.Fatal("grade not inserted")
	}
	if res.Count(OpInsert) != 1 {
		t.Fatalf("ops:\n%s", res)
	}
	auditClean(t, db, g)
}

func TestPartialInsertRepairsDependencies(t *testing.T) {
	db, g, _, u := fixture(t)
	// A grade for an unknown student repairs STUDENT and PEOPLE.
	res, err := u.PartialInsert(reldb.Tuple{s("CS345")}, university.Grades,
		reldb.Tuple{s("CS345"), iv(888), s("Win91"), s("C")})
	if err != nil {
		t.Fatal(err)
	}
	if !db.MustRelation(university.Student).Has(reldb.Tuple{iv(888)}) ||
		!db.MustRelation(university.People).Has(reldb.Tuple{iv(888)}) {
		t.Fatal("dependencies not repaired")
	}
	if res.Count(OpInsert) != 3 {
		t.Fatalf("ops:\n%s", res)
	}
	auditClean(t, db, g)
}

func TestPartialInsertDisconnectedRejected(t *testing.T) {
	db, _, _, u := fixture(t)
	// A grade whose CourseID names a different course is not connected to
	// the addressed instance.
	before := db.TotalRows()
	_, err := u.PartialInsert(reldb.Tuple{s("CS345")}, university.Grades,
		reldb.Tuple{s("CS101"), iv(99), s("Win91"), s("B")})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	if db.TotalRows() != before {
		t.Fatal("rolled-back insert left changes")
	}
}

func TestPartialInsertErrors(t *testing.T) {
	_, _, _, u := fixture(t)
	if _, err := u.PartialInsert(reldb.Tuple{s("CS345")}, "NOPE", reldb.Tuple{}); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := u.PartialInsert(reldb.Tuple{s("NOPE")}, university.Grades,
		reldb.Tuple{s("NOPE"), iv(1), reldb.Null(), reldb.Null()}); !errors.Is(err, reldb.ErrNoSuchTuple) {
		t.Fatalf("err = %v", err)
	}
	// Gate.
	_, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.AllowInsertion = false
	u2 := NewUpdater(tr)
	if _, err := u2.PartialInsert(reldb.Tuple{s("CS345")}, university.Grades,
		reldb.Tuple{s("CS345"), iv(2), reldb.Null(), reldb.Null()}); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

func TestPartialDeleteIslandComponent(t *testing.T) {
	db, g, _, u := fixture(t)
	res, err := u.PartialDelete(reldb.Tuple{s("CS345")}, university.Grades,
		reldb.Tuple{s("CS345"), iv(1)})
	if err != nil {
		t.Fatal(err)
	}
	if db.MustRelation(university.Grades).Has(reldb.Tuple{s("CS345"), iv(1)}) {
		t.Fatal("grade survived")
	}
	if res.Count(OpDelete) != 1 {
		t.Fatalf("ops:\n%s", res)
	}
	auditClean(t, db, g)
}

func TestPartialDeleteOutsideRejected(t *testing.T) {
	_, _, _, u := fixture(t)
	_, err := u.PartialDelete(reldb.Tuple{s("CS345")}, university.Student, reldb.Tuple{iv(1)})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection (outside island)", err)
	}
}

func TestPartialDeletePivotRedirects(t *testing.T) {
	_, _, _, u := fixture(t)
	_, err := u.PartialDelete(reldb.Tuple{s("CS345")}, university.Courses, reldb.Tuple{s("CS345")})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

func TestPartialDeleteWrongInstance(t *testing.T) {
	_, _, _, u := fixture(t)
	// CS101's grade does not belong to CS345's instance.
	_, err := u.PartialDelete(reldb.Tuple{s("CS345")}, university.Grades,
		reldb.Tuple{s("CS101"), iv(1)})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	// Missing tuple.
	_, err = u.PartialDelete(reldb.Tuple{s("CS345")}, university.Grades,
		reldb.Tuple{s("CS345"), iv(999)})
	if !errors.Is(err, reldb.ErrNoSuchTuple) {
		t.Fatalf("err = %v", err)
	}
}

func TestPartialUpdateNonKey(t *testing.T) {
	db, g, _, u := fixture(t)
	old := reldb.Tuple{s("CS345"), iv(1), s("Win91"), s("A")}
	res, err := u.PartialUpdate(reldb.Tuple{s("CS345")}, university.Grades,
		old, reldb.Tuple{s("CS345"), iv(1), s("Win91"), s("A+")})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := db.MustRelation(university.Grades).Get(reldb.Tuple{s("CS345"), iv(1)})
	if got[3].MustString() != "A+" {
		t.Fatalf("grade = %v", got[3])
	}
	if res.Count(OpReplace) != 1 {
		t.Fatalf("ops:\n%s", res)
	}
	auditClean(t, db, g)
}

func TestPartialUpdateIslandKeyChange(t *testing.T) {
	db, g, _, u := fixture(t)
	// Reassign the grade of student 1 to student 2 (key complement change).
	old := reldb.Tuple{s("CS345"), iv(1), s("Win91"), s("A")}
	_, err := u.PartialUpdate(reldb.Tuple{s("CS345")}, university.Grades,
		old, reldb.Tuple{s("CS345"), iv(2), s("Win91"), s("A")})
	if err != nil {
		t.Fatal(err)
	}
	grades := db.MustRelation(university.Grades)
	if grades.Has(reldb.Tuple{s("CS345"), iv(1)}) || !grades.Has(reldb.Tuple{s("CS345"), iv(2)}) {
		t.Fatal("key change not applied")
	}
	auditClean(t, db, g)
}

func TestPartialUpdatePivotKeyChangePropagates(t *testing.T) {
	db, g, _, u := fixture(t)
	old, _ := db.MustRelation(university.Courses).Get(reldb.Tuple{s("CS345")})
	nt := old.Clone()
	nt[0] = s("CS346")
	if _, err := u.PartialUpdate(reldb.Tuple{s("CS345")}, university.Courses, old, nt); err != nil {
		t.Fatal(err)
	}
	// Grades and curriculum rows followed.
	moved, _ := db.MustRelation(university.Grades).MatchEqual([]string{"CourseID"}, reldb.Tuple{s("CS346")})
	if len(moved) != 3 {
		t.Fatalf("grades moved = %d", len(moved))
	}
	curr, _ := db.MustRelation(university.Curriculum).MatchEqual([]string{"CourseID"}, reldb.Tuple{s("CS346")})
	if len(curr) != 2 {
		t.Fatalf("curriculum moved = %d", len(curr))
	}
	auditClean(t, db, g)
}

func TestPartialUpdateOutsideKeyChangeRejected(t *testing.T) {
	db, _, _, u := fixture(t)
	old, _ := db.MustRelation(university.Student).Get(reldb.Tuple{iv(1)})
	nt := old.Clone()
	nt[0] = iv(999)
	_, err := u.PartialUpdate(reldb.Tuple{s("CS345")}, university.Student, old, nt)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

func TestPartialUpdateReferencedKeyInserts(t *testing.T) {
	db, g, _, u := fixture(t)
	old, _ := db.MustRelation(university.Department).Get(reldb.Tuple{s("Computer Science")})
	nt := reldb.Tuple{s("Engineering Economic Systems"), reldb.Null(), reldb.Null()}
	res, err := u.PartialUpdate(reldb.Tuple{s("CS345")}, university.Department, old, nt)
	if err != nil {
		t.Fatal(err)
	}
	// Rule 2: insertion, not replacement.
	if !db.MustRelation(university.Department).Has(reldb.Tuple{s("Engineering Economic Systems")}) {
		t.Fatal("EES not inserted")
	}
	if !db.MustRelation(university.Department).Has(reldb.Tuple{s("Computer Science")}) {
		t.Fatal("old department removed")
	}
	if res.Count(OpInsert) != 1 || res.Count(OpDelete) != 0 {
		t.Fatalf("ops:\n%s", res)
	}
	auditClean(t, db, g)
}

func TestPartialUpdateIdenticalNoOp(t *testing.T) {
	db, _, _, u := fixture(t)
	old, _ := db.MustRelation(university.Grades).Get(reldb.Tuple{s("CS345"), iv(1)})
	res, err := u.PartialUpdate(reldb.Tuple{s("CS345")}, university.Grades, old, old)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != 0 {
		t.Fatalf("ops:\n%s", res)
	}
}

func TestPartialUpdateGates(t *testing.T) {
	db, _, om, _ := fixture(t)
	tr := PermissiveTranslator(om)
	tr.AllowReplacement = false
	u := NewUpdater(tr)
	old, _ := db.MustRelation(university.Grades).Get(reldb.Tuple{s("CS345"), iv(1)})
	nt := old.Clone()
	nt[3] = s("B")
	if _, err := u.PartialUpdate(reldb.Tuple{s("CS345")}, university.Grades, old, nt); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	// Deletion gate for partial delete.
	tr2 := PermissiveTranslator(om)
	tr2.AllowDeletion = false
	u2 := NewUpdater(tr2)
	if _, err := u2.PartialDelete(reldb.Tuple{s("CS345")}, university.Grades,
		reldb.Tuple{s("CS345"), iv(1)}); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

func TestPartialUpdateStaleOldTuple(t *testing.T) {
	db, _, _, u := fixture(t)
	ghost := reldb.Tuple{s("CS345"), iv(42), s("Win91"), s("A")}
	nt := ghost.Clone()
	nt[3] = s("B")
	_, err := u.PartialUpdate(reldb.Tuple{s("CS345")}, university.Grades, ghost, nt)
	if !errors.Is(err, ErrRejected) && !errors.Is(err, reldb.ErrNoSuchTuple) {
		t.Fatalf("err = %v", err)
	}
	_ = db
}
