package keller

import (
	"errors"
	"fmt"
	"time"

	"penguin/internal/obs"
	"penguin/internal/reldb"
)

// ErrRejected wraps every policy rejection of the flat-view translator.
var ErrRejected = errors.New("view update rejected by translator")

// RelationPolicy holds the per-relation permissions a Keller dialog
// establishes at view-definition time (Keller 1986).
type RelationPolicy struct {
	// AllowInsert permits inserting new tuples during view insertions
	// and replacements.
	AllowInsert bool
	// AllowModify permits replacing existing tuples.
	AllowModify bool
	// AllowKeyReplace permits replacing the tuple's key during view
	// replacements (root relation only; elsewhere key changes insert).
	AllowKeyReplace bool
}

// Translator is the flat-view update translator: the view plus the
// per-relation policies the definition-time dialog chose.
type Translator struct {
	View *View
	// Policy maps relation names to their permissions; absent relations
	// deny everything.
	Policy map[string]RelationPolicy
}

// PermissiveTranslator allows every operation on every joined relation.
func PermissiveTranslator(v *View) *Translator {
	t := &Translator{View: v, Policy: make(map[string]RelationPolicy)}
	for _, j := range v.Joins {
		t.Policy[j.Relation] = RelationPolicy{AllowInsert: true, AllowModify: true, AllowKeyReplace: true}
	}
	return t
}

func (t *Translator) policy(rel string) RelationPolicy { return t.Policy[rel] }

// Result mirrors the view-object updater's result: the primitive
// operations one view update translated into.
type Result struct {
	Inserts  int
	Deletes  int
	Replaces int
}

// Total returns the number of database operations performed.
func (r *Result) Total() int { return r.Inserts + r.Deletes + r.Replaces }

// observe records one committed flat-view translation into the baseline
// metrics: translation latency and emitted primitive operations. The
// root op (active when tracing or the flight recorder is on) carries
// the commit as a child span; without one a flat span preserves the old
// behaviour for sinks installed mid-operation.
func (r *Result) observe(name string, start time.Time, op obs.Op) {
	obs.Default.KellerTranslateNs.Observe(time.Since(start).Nanoseconds())
	obs.Default.KellerOps.Add(int64(r.Total()))
	if op.Active() {
		op.Finish(fmt.Sprintf("ops=%d", r.Total()))
	} else if obs.Default.Tracing() {
		obs.Default.EmitSpan(name, fmt.Sprintf("ops=%d", r.Total()), start)
	}
}

// Insert translates a view insertion (Keller 1985): for each relation of
// the query graph, the view tuple's attributes for that relation build a
// base tuple (attributes the view projects out become null); then
//
//	case 1 — an identical tuple exists: reject for the root relation,
//	         no-op elsewhere;
//	case 2 — the key is free: insert;
//	case 3 — the key exists with conflicting values: replace, when the
//	         policy allows modification.
//
// The whole translation runs in one transaction.
func (t *Translator) Insert(viewTuple reldb.Tuple) (*Result, error) {
	op := obs.Default.StartOp("keller.insert")
	start := time.Now()
	res := &Result{}
	err := t.View.db.RunInTx(func(tx *reldb.Tx) error {
		tx.SetTraceOp(op)
		schema := t.View.schema
		if len(viewTuple) != schema.Arity() {
			return fmt.Errorf("keller: view tuple arity %d, want %d", len(viewTuple), schema.Arity())
		}
		for i, j := range t.View.Joins {
			if err := t.insertIntoRelation(tx, res, schema, viewTuple, j.Relation, i == 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		if op.Active() {
			op.Finish("rejected")
		}
		return nil, err
	}
	res.observe("keller.insert", start, op)
	return res, nil
}

func (t *Translator) insertIntoRelation(tx *reldb.Tx, res *Result, viewSchema *reldb.Schema,
	viewTuple reldb.Tuple, relName string, isRoot bool) error {

	rel, err := tx.Relation(relName)
	if err != nil {
		return err
	}
	base := rel.Schema()
	attrMap := t.View.attrMaps[relName]
	bt := make(reldb.Tuple, base.Arity())
	for bi, vi := range attrMap {
		bt[bi] = viewTuple[vi]
	}
	if err := base.CheckTuple(bt); err != nil {
		return fmt.Errorf("keller: %s: building %s tuple: %w", t.View.Name, relName, err)
	}
	key := base.KeyOf(bt)
	existing, exists := rel.Get(key)
	switch {
	case exists && visibleEqual(bt, existing, attrMap):
		if isRoot {
			return fmt.Errorf("keller: %s: identical tuple already exists in root relation %s: %w",
				t.View.Name, relName, ErrRejected)
		}
		return nil
	case !exists:
		if !t.policy(relName).AllowInsert {
			return fmt.Errorf("keller: %s: insertions into %s are not allowed: %w",
				t.View.Name, relName, ErrRejected)
		}
		if err := tx.Insert(relName, bt); err != nil {
			return err
		}
		res.Inserts++
		return nil
	default:
		if !t.policy(relName).AllowModify {
			return fmt.Errorf("keller: %s: modifications of %s are not allowed: %w",
				t.View.Name, relName, ErrRejected)
		}
		merged := existing.Clone()
		for bi, vi := range attrMap {
			merged[bi] = viewTuple[vi]
		}
		if _, err := tx.Replace(relName, key, merged); err != nil {
			return err
		}
		res.Replaces++
		return nil
	}
}

// visibleEqual compares a constructed tuple with an existing one on the
// attributes the view exposes.
func visibleEqual(bt, existing reldb.Tuple, attrMap map[int]int) bool {
	for bi := range attrMap {
		if !bt[bi].Equal(existing[bi]) {
			return false
		}
	}
	return true
}

// Delete translates a view deletion: Keller's algorithm deletes the
// matching tuple from the root relation of the query graph — and nothing
// else. The paper's §5.1 starts from exactly this behaviour to show why
// view objects need more: dependent tuples in other relations survive as
// orphans (the comparison experiment measures them).
func (t *Translator) Delete(viewTuple reldb.Tuple) (*Result, error) {
	op := obs.Default.StartOp("keller.delete")
	start := time.Now()
	res := &Result{}
	err := t.View.db.RunInTx(func(tx *reldb.Tx) error {
		tx.SetTraceOp(op)
		rootName := t.View.Root()
		rel, err := tx.Relation(rootName)
		if err != nil {
			return err
		}
		base := rel.Schema()
		attrMap := t.View.attrMaps[rootName]
		bt := make(reldb.Tuple, base.Arity())
		for bi, vi := range attrMap {
			bt[bi] = viewTuple[vi]
		}
		key := base.KeyOf(bt)
		if _, err := tx.Delete(rootName, key); err != nil {
			return err
		}
		res.Deletes++
		return nil
	})
	if err != nil {
		if op.Active() {
			op.Finish("rejected")
		}
		return nil, err
	}
	res.observe("keller.delete", start, op)
	return res, nil
}

// Replace translates a view replacement with the R/I two-state discipline
// restricted to flat tuples: per relation, matching keys with differing
// values replace; a key change replaces the root tuple's key (when
// allowed) and inserts elsewhere.
func (t *Translator) Replace(oldTuple, newTuple reldb.Tuple) (*Result, error) {
	op := obs.Default.StartOp("keller.replace")
	start := time.Now()
	res := &Result{}
	err := t.View.db.RunInTx(func(tx *reldb.Tx) error {
		tx.SetTraceOp(op)
		schema := t.View.schema
		for i, j := range t.View.Joins {
			if err := t.replaceInRelation(tx, res, schema, oldTuple, newTuple, j.Relation, i == 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		if op.Active() {
			op.Finish("rejected")
		}
		return nil, err
	}
	res.observe("keller.replace", start, op)
	return res, nil
}

func (t *Translator) replaceInRelation(tx *reldb.Tx, res *Result, viewSchema *reldb.Schema,
	oldTuple, newTuple reldb.Tuple, relName string, isRoot bool) error {

	rel, err := tx.Relation(relName)
	if err != nil {
		return err
	}
	base := rel.Schema()
	attrMap := t.View.attrMaps[relName]
	ot := make(reldb.Tuple, base.Arity())
	nt := make(reldb.Tuple, base.Arity())
	for bi, vi := range attrMap {
		ot[bi] = oldTuple[vi]
		nt[bi] = newTuple[vi]
	}
	if err := base.CheckTuple(nt); err != nil {
		return fmt.Errorf("keller: %s: building %s tuple: %w", t.View.Name, relName, err)
	}
	oldKey, newKey := base.KeyOf(ot), base.KeyOf(nt)
	p := t.policy(relName)
	if oldKey.Equal(newKey) {
		// Same key: merge visible changes into the stored tuple.
		existing, ok := rel.Get(oldKey)
		if !ok {
			return fmt.Errorf("keller: %s: %s tuple %s no longer exists: %w",
				t.View.Name, relName, oldKey, reldb.ErrNoSuchTuple)
		}
		merged := existing.Clone()
		changed := false
		for bi, vi := range attrMap {
			if !merged[bi].Equal(newTuple[vi]) {
				merged[bi] = newTuple[vi]
				changed = true
			}
		}
		if !changed {
			return nil
		}
		if !p.AllowModify {
			return fmt.Errorf("keller: %s: modifications of %s are not allowed: %w",
				t.View.Name, relName, ErrRejected)
		}
		if _, err := tx.Replace(relName, oldKey, merged); err != nil {
			return err
		}
		res.Replaces++
		return nil
	}
	if isRoot {
		if !p.AllowKeyReplace {
			return fmt.Errorf("keller: %s: key replacements in %s are not allowed: %w",
				t.View.Name, relName, ErrRejected)
		}
		if _, err := tx.Replace(relName, oldKey, nt); err != nil {
			return err
		}
		res.Replaces++
		return nil
	}
	// Non-root key change: insertion semantics.
	if existing, exists := rel.Get(newKey); exists {
		if visibleEqual(nt, existing, attrMap) {
			return nil
		}
		if !p.AllowModify {
			return fmt.Errorf("keller: %s: modifications of %s are not allowed: %w",
				t.View.Name, relName, ErrRejected)
		}
		merged := existing.Clone()
		for bi, vi := range attrMap {
			merged[bi] = newTuple[vi]
		}
		if _, err := tx.Replace(relName, newKey, merged); err != nil {
			return err
		}
		res.Replaces++
		return nil
	}
	if !p.AllowInsert {
		return fmt.Errorf("keller: %s: insertions into %s are not allowed: %w",
			t.View.Name, relName, ErrRejected)
	}
	if err := tx.Insert(relName, nt); err != nil {
		return err
	}
	res.Inserts++
	return nil
}
