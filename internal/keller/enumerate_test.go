package keller_test

import (
	"strings"
	"testing"

	. "penguin/internal/keller"
	"penguin/internal/reldb"
	"penguin/internal/university"
)

// The ambiguity of view-update translation, made concrete: deleting one
// row of the COURSES ⋈ GRADES view admits several candidate translations;
// the validity criteria prune the space.
func TestEnumerateDeletionTranslations(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	// CS445 has two grades (students 1 and 5). Deleting the (CS445, 5)
	// view row:
	viewTuple := reldb.Tuple{s("CS445"), s("Distributed Systems"), s("graduate"), iv(5), s("B")}
	cands, err := tr.EnumerateDeletionTranslations(viewTuple)
	if err != nil {
		t.Fatal(err)
	}
	// Primitives: delete COURSES(CS445), delete GRADES(CS445,5) — the
	// join runs over key attributes, so no set-null primitive applies.
	// Space: 3 nonempty subsets.
	if len(cands) != 3 {
		t.Fatalf("space size = %d, want 3:\n%s", len(cands), renderCands(cands))
	}

	valid, err := tr.ValidTranslations(viewTuple)
	if err != nil {
		t.Fatal(err)
	}
	// Deleting the course kills the OTHER view row too (C2 violation);
	// deleting both likewise; only deleting the grade is valid.
	if len(valid) != 1 {
		t.Fatalf("valid translations = %d, want 1:\n%s", len(valid), renderCands(cands))
	}
	if len(valid[0].Ops) != 1 || valid[0].Ops[0].Relation != university.Grades {
		t.Fatalf("valid translation = %s", valid[0])
	}
	// The course-deletion candidate is invalid with a C2 reason.
	foundC2 := false
	for _, c := range cands {
		if !c.Valid && strings.Contains(c.Reason, "C2") {
			foundC2 = true
		}
	}
	if !foundC2 {
		t.Fatalf("no C2 violation reported:\n%s", renderCands(cands))
	}
}

// A course with exactly one grade: deleting its only view row admits TWO
// minimal valid translations (delete the grade, or delete the course —
// the course deletion also removes the view row and, with no other grades,
// violates nothing at the view level). This is precisely the ambiguity
// the definition-time dialog resolves.
func TestEnumerationShowsGenuineAmbiguity(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	// EE201 has exactly one grade (student 3).
	viewTuple := reldb.Tuple{s("EE201"), s("Circuits I"), s("undergraduate"), iv(3), s("A")}
	valid, err := tr.ValidTranslations(viewTuple)
	if err != nil {
		t.Fatal(err)
	}
	if len(valid) != 2 {
		t.Fatalf("valid translations = %d, want 2 (the ambiguity):\n%s",
			len(valid), renderCands(valid))
	}
	rels := map[string]bool{}
	for _, c := range valid {
		if len(c.Ops) != 1 {
			t.Fatalf("non-minimal candidate survived: %s", c)
		}
		rels[c.Ops[0].Relation] = true
	}
	if !rels[university.Courses] || !rels[university.Grades] {
		t.Fatalf("expected one candidate per relation: %v", rels)
	}
	// The delete-both candidate must be rejected as non-minimal (C3).
	all, err := tr.EnumerateDeletionTranslations(viewTuple)
	if err != nil {
		t.Fatal(err)
	}
	foundC3 := false
	for _, c := range all {
		if !c.Valid && strings.Contains(c.Reason, "C3") {
			foundC3 = true
		}
	}
	if !foundC3 {
		t.Fatalf("no C3 rejection:\n%s", renderCands(all))
	}
	// Enumeration never mutates the real database.
	if !db.MustRelation(university.Courses).Has(reldb.Tuple{s("EE201")}) {
		t.Fatal("enumeration mutated the database")
	}
}

// Set-null primitives appear when a join attribute is nullable and
// non-key: a view over PEOPLE ⋈ DEPARTMENT can disconnect a person by
// nulling their DeptName.
func TestEnumerationSetNullPrimitive(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v, err := NewView(db, "people-dept",
		[]Join{
			{Relation: university.People},
			{Relation: university.Department,
				LeftAttrs: []string{"PEOPLE.DeptName"}, RightAttrs: []string{"DeptName"}},
		}, nil,
		[]string{"PEOPLE.PID", "PEOPLE.Name", "DEPARTMENT.DeptName", "DEPARTMENT.Building"})
	if err != nil {
		t.Fatal(err)
	}
	tr := PermissiveTranslator(v)
	// Bob (PID 2) is the only ME person; ME owns a curriculum row but the
	// view does not see it. Deleting Bob's view row:
	viewTuple := reldb.Tuple{iv(2), s("Bob Builder"), s("Mechanical Engineering"), s("Building 530")}
	cands, err := tr.EnumerateDeletionTranslations(viewTuple)
	if err != nil {
		t.Fatal(err)
	}
	// Primitives: delete PEOPLE(2), set-null PEOPLE(2).DeptName,
	// delete DEPARTMENT(ME) — 7 subsets.
	if len(cands) != 7 {
		t.Fatalf("space = %d, want 7:\n%s", len(cands), renderCands(cands))
	}
	valid, err := tr.ValidTranslations(viewTuple)
	if err != nil {
		t.Fatal(err)
	}
	// Bob is ME's only member and ME appears in no other view row, so
	// three minimal translations are view-valid: delete Bob, null Bob's
	// DeptName, or delete the department.
	if len(valid) != 3 {
		t.Fatalf("valid = %d, want 3:\n%s", len(valid), renderCands(cands))
	}
	kinds := map[string]bool{}
	for _, c := range valid {
		if len(c.Ops) != 1 {
			t.Fatalf("non-minimal survived: %s", c)
		}
		kinds[c.Ops[0].Kind+":"+c.Ops[0].Relation] = true
	}
	for _, want := range []string{"delete:PEOPLE", "set-null:PEOPLE", "delete:DEPARTMENT"} {
		if !kinds[want] {
			t.Fatalf("missing candidate %s: %v", want, kinds)
		}
	}
}

func renderCands(cands []Candidate) string {
	var b strings.Builder
	for _, c := range cands {
		b.WriteString(c.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Insertion enumeration: adding a grade to an existing course admits one
// minimal valid translation (insert the grade), and replacing the
// course's visible values appears only in non-minimal or side-effecting
// candidates.
func TestEnumerateInsertionTranslations(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	// New grade for CS445 by student 2; the course row matches the
	// database's visible values exactly.
	viewTuple := reldb.Tuple{s("CS445"), s("Distributed Systems"), s("graduate"), iv(2), s("B-")}
	cands, err := tr.EnumerateInsertionTranslations(viewTuple)
	if err != nil {
		t.Fatal(err)
	}
	// Primitives: insert GRADES(CS445,2); the COURSES side offers no
	// operation (identical visible values). Space: 1 candidate.
	if len(cands) != 1 {
		t.Fatalf("space = %d, want 1:\n%s", len(cands), renderCands(cands))
	}
	if !cands[0].Valid || cands[0].Ops[0].Kind != "insert" || cands[0].Ops[0].Relation != university.Grades {
		t.Fatalf("candidate = %s", cands[0])
	}
	// Enumeration never mutates the database.
	if db.MustRelation(university.Grades).Has(reldb.Tuple{s("CS445"), iv(2)}) {
		t.Fatal("enumeration mutated the database")
	}
}

// A brand-new course with one grade: only the both-inserts candidate is
// valid — inserting just one side never materializes the join row (C1).
func TestEnumerateInsertionNeedsBothSides(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	viewTuple := reldb.Tuple{s("CS999"), s("Fresh"), s("graduate"), iv(1), s("A")}
	cands, err := tr.EnumerateInsertionTranslations(viewTuple)
	if err != nil {
		t.Fatal(err)
	}
	// Space: {course}, {grade}, {course+grade}.
	if len(cands) != 3 {
		t.Fatalf("space = %d, want 3:\n%s", len(cands), renderCands(cands))
	}
	var valid []Candidate
	c1s := 0
	for _, c := range cands {
		if c.Valid {
			valid = append(valid, c)
		} else if strings.Contains(c.Reason, "C1") {
			c1s++
		}
	}
	if len(valid) != 1 || len(valid[0].Ops) != 2 {
		t.Fatalf("valid = %v", valid)
	}
	if c1s != 2 {
		t.Fatalf("C1 rejections = %d, want 2:\n%s", c1s, renderCands(cands))
	}
}

// A conflicting course title makes the COURSES side a replace primitive;
// the valid translation combines it with the grade insertion — exactly
// Keller's case-3 behaviour that the Insert translator implements.
func TestEnumerateInsertionWithConflict(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	viewTuple := reldb.Tuple{s("CS445"), s("Renamed Systems"), s("graduate"), iv(2), s("B")}
	cands, err := tr.EnumerateInsertionTranslations(viewTuple)
	if err != nil {
		t.Fatal(err)
	}
	var valid []Candidate
	for _, c := range cands {
		if c.Valid {
			valid = append(valid, c)
		}
	}
	// Replacing the title changes the OTHER CS445 view rows too (student
	// 1's and 5's rows carry the title) — C2 forbids the replace, so no
	// candidate is valid: the request is untranslatable without touching
	// sibling view rows, which is precisely why Keller's translator makes
	// the replace-vs-reject choice a definition-time policy.
	if len(valid) != 0 {
		t.Fatalf("valid = %d, want 0:\n%s", len(valid), renderCands(cands))
	}
	foundC2, foundC1 := false, false
	for _, c := range cands {
		if strings.Contains(c.Reason, "C2") {
			foundC2 = true
		}
		if strings.Contains(c.Reason, "C1") {
			foundC1 = true
		}
	}
	if !foundC2 || !foundC1 {
		t.Fatalf("want both C1 and C2 rejections:\n%s", renderCands(cands))
	}
}
