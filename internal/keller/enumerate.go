package keller

import (
	"fmt"
	"sort"
	"strings"

	"penguin/internal/reldb"
)

// Translation-space enumeration (§4 of the view-object paper, after
// Keller 1985): "we specify an enumeration of all possible valid
// translations into sequences of database updates of each view update …
// This enumeration is based on five validity criteria that must all be
// satisfied. … We do not actually instantiate this enumeration, we merely
// use it to define the space of alternatives."
//
// This file *does* instantiate the enumeration for view deletions, making
// the ambiguity the paper talks about concrete: each candidate translation
// is a set of primitive operations on the base relations; candidates are
// validated semantically by applying them to a scratch copy of the
// database and re-materializing the view. The criteria checked are the
// classical ones, specialized to deletions:
//
//	C1 (effect)      — the requested view tuple disappears from the view;
//	C2 (no side effects) — no other view tuple appears or disappears;
//	C3 (minimality)  — no proper subset of the operations satisfies C1+C2;
//	C4 (database consistency) — every operation is executable (keys exist);
//	C5 (determinism) — the translation is a function of the request and
//	                   the database state only (guaranteed by construction:
//	                   candidates are built syntactically from the request).
//
// The chosen translator (see dialog.go) then corresponds to picking one
// valid candidate class once, at view-definition time.

// CandidateOp is one primitive operation of a candidate translation.
type CandidateOp struct {
	// Kind is "delete" or "set-null".
	Kind string
	// Relation is the affected base relation.
	Relation string
	// Key identifies the affected tuple.
	Key reldb.Tuple
	// Attrs are the attributes nulled by a set-null operation.
	Attrs []string
}

// String implements fmt.Stringer.
func (op CandidateOp) String() string {
	if op.Kind == "set-null" {
		return fmt.Sprintf("set-null %s key %s (%s)", op.Relation, op.Key, strings.Join(op.Attrs, ","))
	}
	return fmt.Sprintf("%s %s key %s", op.Kind, op.Relation, op.Key)
}

// Candidate is one member of the translation space.
type Candidate struct {
	Ops []CandidateOp
	// Valid reports whether all criteria hold; Reason explains the first
	// violated criterion otherwise.
	Valid  bool
	Reason string
}

// String implements fmt.Stringer.
func (c Candidate) String() string {
	parts := make([]string, len(c.Ops))
	for i, op := range c.Ops {
		parts[i] = op.String()
	}
	status := "VALID"
	if !c.Valid {
		status = "invalid: " + c.Reason
	}
	return fmt.Sprintf("{%s} — %s", strings.Join(parts, "; "), status)
}

// EnumerateDeletionTranslations builds the space of candidate translations
// for deleting one view tuple: every nonempty combination of per-relation
// primitive operations (deleting the matching base tuple, or nulling its
// visible join attributes where the schema allows), each validated against
// the five criteria on a scratch copy of the database.
func (t *Translator) EnumerateDeletionTranslations(viewTuple reldb.Tuple) ([]Candidate, error) {
	v := t.View
	schema := v.schema
	if len(viewTuple) != schema.Arity() {
		return nil, fmt.Errorf("keller: view tuple arity %d, want %d", len(viewTuple), schema.Arity())
	}
	// Primitive operations available per relation.
	var prims []CandidateOp
	for _, j := range v.Joins {
		rel, err := v.db.Relation(j.Relation)
		if err != nil {
			return nil, err
		}
		base := rel.Schema()
		attrMap := v.attrMaps[j.Relation]
		bt := make(reldb.Tuple, base.Arity())
		for bi, vi := range attrMap {
			bt[bi] = viewTuple[vi]
		}
		key := base.KeyOf(bt)
		prims = append(prims, CandidateOp{Kind: "delete", Relation: j.Relation, Key: key})
		// Set-null on nullable non-key join attributes disconnects the
		// tuple from the join without deleting it.
		var nullable []string
		for bi := range attrMap {
			a := base.Attr(bi)
			if a.Nullable && !base.IsKeyAttr(bi) && isJoinAttr(v, j.Relation, a.Name) {
				nullable = append(nullable, a.Name)
			}
		}
		if len(nullable) > 0 {
			sort.Strings(nullable)
			prims = append(prims, CandidateOp{Kind: "set-null", Relation: j.Relation, Key: key, Attrs: nullable})
		}
	}
	// The space: every nonempty subset of the primitives (bounded — a
	// view joins a handful of relations).
	if len(prims) > 12 {
		return nil, fmt.Errorf("keller: translation space too large (%d primitives)", len(prims))
	}
	baseline, err := v.Materialize()
	if err != nil {
		return nil, err
	}
	wantGone := viewTuple.Encode()
	var out []Candidate
	for mask := 1; mask < 1<<len(prims); mask++ {
		var ops []CandidateOp
		for i := range prims {
			if mask&(1<<i) != 0 {
				ops = append(ops, prims[i])
			}
		}
		cand := t.validateCandidate(ops, baseline, wantGone)
		out = append(out, cand)
	}
	// C3 (minimality): a valid candidate whose ops are a strict superset
	// of another valid candidate's ops is non-minimal.
	markNonMinimal(out)
	return out, nil
}

// isJoinAttr reports whether rel.attr participates in some join condition.
func isJoinAttr(v *View, rel, attr string) bool {
	q := qualify(rel, attr)
	for _, j := range v.Joins[1:] {
		for i := range j.LeftAttrs {
			if j.LeftAttrs[i] == q || qualify(j.Relation, j.RightAttrs[i]) == q {
				return true
			}
		}
	}
	return false
}

// validateCandidate applies ops to a scratch clone and checks C1, C2, C4.
func (t *Translator) validateCandidate(ops []CandidateOp, baseline *reldb.ResultSet, wantGone string) Candidate {
	cand := Candidate{Ops: ops}
	scratch := t.View.db.Clone()
	// C4: operations must be executable.
	err := scratch.RunInTx(func(tx *reldb.Tx) error {
		for _, op := range ops {
			switch op.Kind {
			case "delete":
				if _, err := tx.Delete(op.Relation, op.Key); err != nil {
					return fmt.Errorf("C4: %s: %w", op, err)
				}
			case "set-null":
				rel, err := tx.Relation(op.Relation)
				if err != nil {
					return err
				}
				old, ok := rel.Get(op.Key)
				if !ok {
					return fmt.Errorf("C4: %s: tuple missing", op)
				}
				nt := old.Clone()
				idx, err := rel.Schema().Indices(op.Attrs)
				if err != nil {
					return err
				}
				for _, j := range idx {
					nt[j] = reldb.Null()
				}
				if _, err := tx.Replace(op.Relation, op.Key, nt); err != nil {
					return fmt.Errorf("C4: %s: %w", op, err)
				}
			}
		}
		return nil
	})
	if err != nil {
		cand.Reason = err.Error()
		return cand
	}
	// Re-materialize the view against the scratch database.
	scratchView := *t.View
	scratchView.db = scratch
	after, err := scratchView.Materialize()
	if err != nil {
		cand.Reason = "C4: " + err.Error()
		return cand
	}
	beforeSet := rowSet(baseline)
	afterSet := rowSet(after)
	// C1: the requested tuple is gone.
	if afterSet[wantGone] {
		cand.Reason = "C1: the view tuple survives"
		return cand
	}
	// C2: no other view tuple appeared or disappeared.
	for enc := range afterSet {
		if !beforeSet[enc] {
			cand.Reason = "C2: a new view tuple appeared"
			return cand
		}
	}
	for enc := range beforeSet {
		if enc != wantGone && !afterSet[enc] {
			cand.Reason = "C2: another view tuple disappeared"
			return cand
		}
	}
	cand.Valid = true
	return cand
}

func rowSet(rs *reldb.ResultSet) map[string]bool {
	out := make(map[string]bool, rs.Len())
	for _, r := range rs.Rows {
		out[r.Encode()] = true
	}
	return out
}

// markNonMinimal demotes valid candidates that strictly contain another
// valid candidate (criterion C3).
func markNonMinimal(cands []Candidate) {
	key := func(op CandidateOp) string {
		return op.Kind + "|" + op.Relation + "|" + op.Key.Encode() + "|" + strings.Join(op.Attrs, ",")
	}
	sets := make([]map[string]bool, len(cands))
	for i, c := range cands {
		sets[i] = make(map[string]bool, len(c.Ops))
		for _, op := range c.Ops {
			sets[i][key(op)] = true
		}
	}
	for i := range cands {
		if !cands[i].Valid {
			continue
		}
		for j := range cands {
			if i == j || !cands[j].Valid || len(sets[j]) >= len(sets[i]) {
				continue
			}
			subset := true
			for k := range sets[j] {
				if !sets[i][k] {
					subset = false
					break
				}
			}
			if subset {
				cands[i].Valid = false
				cands[i].Reason = "C3: not minimal (a smaller valid translation exists)"
				break
			}
		}
	}
}

// ValidTranslations filters the enumeration to the valid candidates —
// the "space of alternatives" among which the dialog-chosen translator
// picks.
func (t *Translator) ValidTranslations(viewTuple reldb.Tuple) ([]Candidate, error) {
	all, err := t.EnumerateDeletionTranslations(viewTuple)
	if err != nil {
		return nil, err
	}
	var valid []Candidate
	for _, c := range all {
		if c.Valid {
			valid = append(valid, c)
		}
	}
	return valid, nil
}

// EnumerateInsertionTranslations builds the space of candidate
// translations for inserting one view tuple: per joined relation, the
// applicable primitives are inserting the constructed base tuple (when
// its key is free), replacing the existing tuple's visible attributes
// (when the key is taken with conflicting values), or leaving the
// relation alone; the space is every combination with at least one
// operation. Criteria C1 (the new view tuple appears), C2 (nothing else
// changes), C3 (minimality), and C4 (executability) are validated on a
// scratch database. Insertion criteria differ from deletion in C1's
// direction only.
func (t *Translator) EnumerateInsertionTranslations(viewTuple reldb.Tuple) ([]Candidate, error) {
	v := t.View
	schema := v.schema
	if len(viewTuple) != schema.Arity() {
		return nil, fmt.Errorf("keller: view tuple arity %d, want %d", len(viewTuple), schema.Arity())
	}
	type option struct {
		op   *CandidateOp // nil = leave the relation alone
		note string
	}
	var perRel [][]option
	for _, j := range v.Joins {
		rel, err := v.db.Relation(j.Relation)
		if err != nil {
			return nil, err
		}
		base := rel.Schema()
		attrMap := v.attrMaps[j.Relation]
		bt := make(reldb.Tuple, base.Arity())
		for bi, vi := range attrMap {
			bt[bi] = viewTuple[vi]
		}
		if err := base.CheckTuple(bt); err != nil {
			return nil, fmt.Errorf("keller: building %s tuple: %w", j.Relation, err)
		}
		key := base.KeyOf(bt)
		opts := []option{{op: nil, note: "skip"}}
		existing, exists := rel.Get(key)
		switch {
		case !exists:
			opts = append(opts, option{op: &CandidateOp{Kind: "insert", Relation: j.Relation, Key: key}})
		case !visibleEqual(bt, existing, attrMap):
			opts = append(opts, option{op: &CandidateOp{Kind: "replace", Relation: j.Relation, Key: key}})
		}
		perRel = append(perRel, opts)
	}
	baseline, err := v.Materialize()
	if err != nil {
		return nil, err
	}
	wantNew := viewTuple.Encode()
	var out []Candidate
	var walk func(i int, ops []CandidateOp)
	walk = func(i int, ops []CandidateOp) {
		if i == len(perRel) {
			if len(ops) == 0 {
				return
			}
			out = append(out, t.validateInsertCandidate(viewTuple, append([]CandidateOp(nil), ops...), baseline, wantNew))
			return
		}
		for _, o := range perRel[i] {
			if o.op == nil {
				walk(i+1, ops)
			} else {
				walk(i+1, append(ops, *o.op))
			}
		}
	}
	walk(0, nil)
	markNonMinimal(out)
	return out, nil
}

// validateInsertCandidate applies the ops (building base tuples from the
// view tuple) on a scratch clone and checks C1, C2, C4 for insertion.
func (t *Translator) validateInsertCandidate(viewTuple reldb.Tuple, ops []CandidateOp, baseline *reldb.ResultSet, wantNew string) Candidate {
	cand := Candidate{Ops: ops}
	scratch := t.View.db.Clone()
	err := scratch.RunInTx(func(tx *reldb.Tx) error {
		for _, op := range ops {
			rel, err := tx.Relation(op.Relation)
			if err != nil {
				return err
			}
			base := rel.Schema()
			attrMap := t.View.attrMaps[op.Relation]
			bt := make(reldb.Tuple, base.Arity())
			for bi, vi := range attrMap {
				bt[bi] = viewTuple[vi]
			}
			switch op.Kind {
			case "insert":
				if err := tx.Insert(op.Relation, bt); err != nil {
					return fmt.Errorf("C4: %s: %w", op, err)
				}
			case "replace":
				existing, ok := rel.Get(op.Key)
				if !ok {
					return fmt.Errorf("C4: %s: tuple missing", op)
				}
				merged := existing.Clone()
				for bi, vi := range attrMap {
					merged[bi] = viewTuple[vi]
				}
				if _, err := tx.Replace(op.Relation, op.Key, merged); err != nil {
					return fmt.Errorf("C4: %s: %w", op, err)
				}
			}
		}
		return nil
	})
	if err != nil {
		cand.Reason = err.Error()
		return cand
	}
	scratchView := *t.View
	scratchView.db = scratch
	after, err := scratchView.Materialize()
	if err != nil {
		cand.Reason = "C4: " + err.Error()
		return cand
	}
	beforeSet := rowSet(baseline)
	afterSet := rowSet(after)
	if !afterSet[wantNew] {
		cand.Reason = "C1: the view tuple does not appear"
		return cand
	}
	for enc := range afterSet {
		if enc != wantNew && !beforeSet[enc] {
			cand.Reason = "C2: an extraneous view tuple appeared"
			return cand
		}
	}
	for enc := range beforeSet {
		if !afterSet[enc] {
			cand.Reason = "C2: an existing view tuple disappeared"
			return cand
		}
	}
	cand.Valid = true
	return cand
}
