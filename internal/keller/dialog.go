package keller

import (
	"fmt"
	"strings"
)

// The flat-view translator-choice dialog (Keller 1986): a short series of
// per-relation questions asked of the view definer at view-definition
// time. The effort of answering once is amortized over every subsequent
// view update — the property the amortization experiment measures.

// Question is one yes/no dialog question.
type Question struct {
	ID   string
	Text string
}

// QA pairs a question with its answer.
type QA struct {
	Question Question
	Answer   bool
}

// Transcript records one dialog run.
type Transcript []QA

// Render prints the transcript in the paper's typography.
func (t Transcript) Render() string {
	var b strings.Builder
	for _, qa := range t {
		ans := "<NO>"
		if qa.Answer {
			ans = "<YES>"
		}
		fmt.Fprintf(&b, "%s %s\n", qa.Question.Text, ans)
	}
	return b.String()
}

// Answerer supplies dialog answers.
type Answerer interface {
	Answer(q Question) (bool, error)
}

// ScriptedAnswerer answers by question ID with a default.
type ScriptedAnswerer struct {
	Answers map[string]bool
	Default bool
}

// Answer implements Answerer.
func (s ScriptedAnswerer) Answer(q Question) (bool, error) {
	if v, ok := s.Answers[q.ID]; ok {
		return v, nil
	}
	return s.Default, nil
}

// ChooseTranslator conducts the per-relation dialog for a view and
// returns the resulting translator and transcript. Per relation, in join
// order: insertion permission, modification permission, and — for the
// root relation — key-replacement permission.
func ChooseTranslator(v *View, a Answerer) (*Translator, Transcript, error) {
	tr := &Translator{View: v, Policy: make(map[string]RelationPolicy)}
	var tape Transcript
	ask := func(q Question) (bool, error) {
		ans, err := a.Answer(q)
		if err != nil {
			return false, err
		}
		tape = append(tape, QA{Question: q, Answer: ans})
		return ans, nil
	}
	for i, j := range v.Joins {
		var p RelationPolicy
		var err error
		if p.AllowInsert, err = ask(Question{
			ID:   "keller." + j.Relation + ".insert",
			Text: fmt.Sprintf("Can new tuples be inserted into relation %s to implement view updates?", j.Relation),
		}); err != nil {
			return nil, tape, err
		}
		if p.AllowModify, err = ask(Question{
			ID:   "keller." + j.Relation + ".modify",
			Text: fmt.Sprintf("Can existing tuples of relation %s be modified to implement view updates?", j.Relation),
		}); err != nil {
			return nil, tape, err
		}
		if i == 0 {
			if p.AllowKeyReplace, err = ask(Question{
				ID:   "keller." + j.Relation + ".keyreplace",
				Text: fmt.Sprintf("Can the key of a tuple of the root relation %s be replaced?", j.Relation),
			}); err != nil {
				return nil, tape, err
			}
		}
		tr.Policy[j.Relation] = p
	}
	return tr, tape, nil
}
