// Package keller implements the baseline of the paper's §4: Keller's
// approach to updating relational databases through flat
// select-project-join views, with a translator chosen by a dialog at view
// definition time (Keller 1985, 1986).
//
// A relational view here is a join chain over base relations with a
// selection and a projection; each view tuple is in first normal form.
// Contrast with view objects: a view-object instance is a fully
// unnormalized entity, and the view-object update algorithms extend the
// ones in this package to whole dependency islands (§5). The experiments
// use this package to demonstrate the difference: a flat-view deletion
// removes only the root-relation tuple and leaves orphans behind that the
// view-object translation would have cleaned up.
package keller

import (
	"fmt"
	"strings"
	"time"

	"penguin/internal/obs"
	"penguin/internal/reldb"
)

// Join adds one relation to a view's query graph, equi-joined to the
// relations already present.
type Join struct {
	// Relation is the base relation to join in.
	Relation string
	// LeftAttrs are qualified attribute names of the accumulated join
	// ("REL.Attr"); RightAttrs are attribute names of Relation. Both are
	// empty for the first (root) relation.
	LeftAttrs, RightAttrs []string
	// Outer keeps unmatched left rows (null-padded).
	Outer bool
}

// View is a select-project-join relational view definition.
type View struct {
	// Name labels the view.
	Name string
	// Joins is the query graph in join order; Joins[0] is the root
	// relation (Keller's deletion target).
	Joins []Join
	// Selection filters the joined rows; attribute references use
	// qualified names. Nil selects everything.
	Selection reldb.Expr
	// Projection lists the qualified attributes the view exposes; empty
	// keeps every joined attribute.
	Projection []string

	db *reldb.Database
	// schema and attrMaps are derived once at definition time so the
	// update translators can use them inside a transaction (which holds
	// the database lock).
	schema   *reldb.Schema
	attrMaps map[string]map[int]int
}

// NewView validates a view definition against the database.
func NewView(db *reldb.Database, name string, joins []Join, selection reldb.Expr, projection []string) (*View, error) {
	if len(joins) == 0 {
		return nil, fmt.Errorf("keller: view %s needs at least one relation", name)
	}
	if len(joins[0].LeftAttrs) != 0 || len(joins[0].RightAttrs) != 0 {
		return nil, fmt.Errorf("keller: view %s: the root relation takes no join condition", name)
	}
	v := &View{Name: name, Joins: joins, Selection: selection, Projection: projection, db: db}
	for i, j := range joins {
		if !db.HasRelation(j.Relation) {
			return nil, fmt.Errorf("keller: view %s: %s: %w", name, j.Relation, reldb.ErrNoSuchRelation)
		}
		if i > 0 && len(j.LeftAttrs) != len(j.RightAttrs) {
			return nil, fmt.Errorf("keller: view %s: join %d has mismatched attribute lists", name, i)
		}
	}
	// Derive and cache the view schema (this also validates the joins,
	// the selection, and the projection).
	schema, err := v.joinedSchema()
	if err != nil {
		return nil, err
	}
	v.schema = schema
	v.attrMaps = make(map[string]map[int]int, len(joins))
	for _, j := range joins {
		m, err := v.relationAttrs(schema, j.Relation)
		if err != nil {
			return nil, err
		}
		v.attrMaps[j.Relation] = m
	}
	return v, nil
}

// Schema returns the view's derived row schema.
func (v *View) Schema() *reldb.Schema { return v.schema }

// Root returns the root relation of the query graph.
func (v *View) Root() string { return v.Joins[0].Relation }

// resolver resolves relation names; *reldb.Database, *reldb.ReadTx, and
// *reldb.Tx all satisfy it.
type resolver interface {
	Relation(name string) (*reldb.Relation, error)
}

// plan composes the view's relational algebra tree over relations resolved
// through res.
func (v *View) plan(res resolver) (reldb.Plan, error) {
	root, err := res.Relation(v.Joins[0].Relation)
	if err != nil {
		return nil, err
	}
	var p reldb.Plan = reldb.QualifyPlan{
		Input:  reldb.ScanPlan{Rel: root},
		Prefix: v.Joins[0].Relation,
	}
	for _, j := range v.Joins[1:] {
		rel, err := res.Relation(j.Relation)
		if err != nil {
			return nil, err
		}
		rightAttrs := make([]string, len(j.RightAttrs))
		for i, a := range j.RightAttrs {
			rightAttrs[i] = qualify(j.Relation, a)
		}
		p = reldb.JoinPlan{
			Left:       p,
			Right:      reldb.QualifyPlan{Input: reldb.ScanPlan{Rel: rel}, Prefix: j.Relation},
			LeftAttrs:  j.LeftAttrs,
			RightAttrs: rightAttrs,
			Outer:      j.Outer,
		}
	}
	if v.Selection != nil {
		p = reldb.SelectPlan{Input: p, Pred: v.Selection}
	}
	if len(v.Projection) > 0 {
		p = reldb.ProjectPlan{Input: p, Names: v.Projection}
	}
	return p, nil
}

// joinedSchema derives the schema of the view's rows.
func (v *View) joinedSchema() (*reldb.Schema, error) {
	rtx := v.db.BeginRead()
	defer rtx.Close()
	p, err := v.plan(rtx)
	if err != nil {
		return nil, err
	}
	// Materialize against the (possibly empty) relations to obtain the
	// derived schema; relations validate lazily so this is cheap when
	// empty and correct when not.
	rs, err := p.Run()
	if err != nil {
		return nil, err
	}
	return rs.Schema, nil
}

// Materialize evaluates the view inside a snapshot-isolated read
// transaction: all joined relations come from one committed state.
func (v *View) Materialize() (*reldb.ResultSet, error) {
	rtx := v.db.BeginRead()
	defer rtx.Close()
	return v.MaterializeIn(rtx)
}

// MaterializeIn evaluates the view against relations resolved through res
// — a *reldb.ReadTx snapshot, a write transaction (to see its uncommitted
// state), or a bare database.
func (v *View) MaterializeIn(res resolver) (*reldb.ResultSet, error) {
	op := obs.Default.StartOp("keller.materialize")
	start := time.Now()
	p, err := v.plan(res)
	if err != nil {
		return nil, err
	}
	rs, err := p.Run()
	if err != nil {
		return nil, err
	}
	obs.Default.KellerMaterializeNs.Observe(time.Since(start).Nanoseconds())
	if op.Active() {
		op.Finish(fmt.Sprintf("view=%s rows=%d", v.Name, len(rs.Rows)))
	}
	return rs, nil
}

// qualify prefixes an attribute with a relation name if not already
// qualified.
func qualify(rel, attr string) string {
	if strings.Contains(attr, ".") {
		return attr
	}
	return rel + "." + attr
}

// relationAttrs extracts, for one joined relation, the mapping from its
// base attribute index to the view row's attribute index, for attributes
// the view exposes either directly or through a join-equivalent attribute
// (an attribute equated to it by a join condition — how Keller's tuple
// construction recovers values the projection dropped from one side).
func (v *View) relationAttrs(viewSchema *reldb.Schema, rel string) (map[int]int, error) {
	baseRel, err := v.db.Relation(rel)
	if err != nil {
		return nil, err
	}
	classes := v.joinEquivalence()
	base := baseRel.Schema()
	out := make(map[int]int)
	for i := 0; i < base.Arity(); i++ {
		q := qualify(rel, base.Attr(i).Name)
		if vi, ok := viewSchema.AttrIndex(q); ok {
			out[i] = vi
			continue
		}
		for _, eq := range classes[q] {
			if vi, ok := viewSchema.AttrIndex(eq); ok {
				out[i] = vi
				break
			}
		}
	}
	return out, nil
}

// joinEquivalence computes, for each qualified attribute, the other
// qualified attributes the join conditions equate it with (transitively).
func (v *View) joinEquivalence() map[string][]string {
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for _, j := range v.Joins[1:] {
		for i := range j.LeftAttrs {
			union(j.LeftAttrs[i], qualify(j.Relation, j.RightAttrs[i]))
		}
	}
	groups := make(map[string][]string)
	for x := range parent {
		groups[find(x)] = append(groups[find(x)], x)
	}
	out := make(map[string][]string)
	for _, members := range groups {
		for _, m := range members {
			for _, other := range members {
				if other != m {
					out[m] = append(out[m], other)
				}
			}
		}
	}
	return out
}

// String renders the view definition.
func (v *View) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "view %s: %s", v.Name, v.Joins[0].Relation)
	for _, j := range v.Joins[1:] {
		fmt.Fprintf(&b, " ⋈ %s", j.Relation)
	}
	if v.Selection != nil {
		fmt.Fprintf(&b, " where %s", v.Selection)
	}
	if len(v.Projection) > 0 {
		fmt.Fprintf(&b, " project (%s)", strings.Join(v.Projection, ", "))
	}
	return b.String()
}
