package keller_test

import (
	"errors"
	"strings"
	"testing"

	. "penguin/internal/keller"
	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/university"
)

func s(v string) reldb.Value { return reldb.String(v) }
func iv(v int64) reldb.Value { return reldb.Int(v) }

// courseGradesView joins COURSES with GRADES — the flat analogue of a
// slice of ω.
func courseGradesView(t *testing.T, db *reldb.Database) *View {
	t.Helper()
	v, err := NewView(db, "course-grades",
		[]Join{
			{Relation: university.Courses},
			{Relation: university.Grades,
				LeftAttrs:  []string{"COURSES.CourseID"},
				RightAttrs: []string{"CourseID"}},
		},
		nil,
		[]string{"COURSES.CourseID", "COURSES.Title", "COURSES.Level", "GRADES.PID", "GRADES.Grade"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestViewValidation(t *testing.T) {
	db, _ := university.MustNewSeeded()
	if _, err := NewView(db, "empty", nil, nil, nil); err == nil {
		t.Fatal("empty view accepted")
	}
	if _, err := NewView(db, "bad-root", []Join{
		{Relation: university.Courses, LeftAttrs: []string{"X"}, RightAttrs: []string{"Y"}},
	}, nil, nil); err == nil {
		t.Fatal("root with join condition accepted")
	}
	if _, err := NewView(db, "missing", []Join{{Relation: "NOPE"}}, nil, nil); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := NewView(db, "mismatch", []Join{
		{Relation: university.Courses},
		{Relation: university.Grades, LeftAttrs: []string{"COURSES.CourseID"}, RightAttrs: []string{"CourseID", "PID"}},
	}, nil, nil); err == nil {
		t.Fatal("mismatched join attrs accepted")
	}
	if _, err := NewView(db, "bad-proj", []Join{{Relation: university.Courses}}, nil,
		[]string{"COURSES.Nope"}); err == nil {
		t.Fatal("unknown projection attr accepted")
	}
}

func TestMaterialize(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	rs, err := v.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// 17 grades total, inner join.
	if rs.Len() != 17 {
		t.Fatalf("view rows = %d, want 17", rs.Len())
	}
	if rs.Schema.Arity() != 5 {
		t.Fatalf("view arity = %d", rs.Schema.Arity())
	}
	if !strings.Contains(v.String(), "COURSES ⋈ GRADES") {
		t.Fatalf("String = %q", v.String())
	}
}

func TestMaterializeWithSelection(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v, err := NewView(db, "grad",
		[]Join{
			{Relation: university.Courses},
			{Relation: university.Grades,
				LeftAttrs: []string{"COURSES.CourseID"}, RightAttrs: []string{"CourseID"}},
		},
		reldb.Cmp{Op: reldb.OpEq, L: reldb.Attr{Name: "COURSES.Level"}, R: reldb.Const{V: s("graduate")}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := v.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// CS345 (3) + CS445 (2) + EE380 (5).
	if rs.Len() != 10 {
		t.Fatalf("rows = %d, want 10", rs.Len())
	}
}

// The headline baseline behaviour: deleting through the flat view removes
// only the root tuple, leaving orphaned GRADES and dangling CURRICULUM
// references — violations the structural audit counts. (VO-CD leaves
// zero; see the vupdate tests and the E11 bench.)
func TestFlatDeleteLeavesOrphans(t *testing.T) {
	db, g := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	viewTuple := reldb.Tuple{s("CS345"), s("Database Systems"), s("graduate"), iv(1), s("A")}
	res, err := tr.Delete(viewTuple)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deletes != 1 || res.Total() != 1 {
		t.Fatalf("result = %+v, want exactly one delete", res)
	}
	if db.MustRelation(university.Courses).Has(reldb.Tuple{s("CS345")}) {
		t.Fatal("root tuple survived")
	}
	// The grades are orphaned, the curriculum rows dangle.
	in := &structural.Integrity{G: g}
	vs, err := in.Audit(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 5 { // 3 orphan grades + 2 dangling curriculum rows
		t.Fatalf("violations = %d, want 5:\n%s", len(vs), structural.FormatViolations(vs))
	}
}

func TestFlatInsert(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	// New course with one grade: both sides inserted; attributes the view
	// projects out become null.
	res, err := tr.Insert(reldb.Tuple{s("CS999"), s("New Course"), s("graduate"), iv(1), s("A")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserts != 2 {
		t.Fatalf("inserts = %d, want 2", res.Inserts)
	}
	course, _ := db.MustRelation(university.Courses).Get(reldb.Tuple{s("CS999")})
	if !course[2].IsNull() { // DeptName projected out
		t.Fatalf("DeptName = %v, want null", course[2])
	}
	// Existing grade row: case 1 for GRADES (no-op), case 3 for COURSES
	// is root-identical → rejection.
	_, err = tr.Insert(reldb.Tuple{s("CS999"), s("New Course"), s("graduate"), iv(1), s("A")})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("identical reinsert err = %v", err)
	}
}

func TestFlatInsertCase3Replaces(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	// Existing course, new grade, conflicting course title: COURSES is
	// the root and its visible values differ -> case 3 replace; GRADES
	// inserted.
	res, err := tr.Insert(reldb.Tuple{s("CS345"), s("Renamed DB"), s("graduate"), iv(2), s("B")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replaces != 1 || res.Inserts != 1 {
		t.Fatalf("result = %+v", res)
	}
	got, _ := db.MustRelation(university.Courses).Get(reldb.Tuple{s("CS345")})
	if got[1].MustString() != "Renamed DB" {
		t.Fatalf("title = %v", got[1])
	}
	if got[2].IsNull() {
		t.Fatal("invisible attribute clobbered")
	}
}

func TestFlatInsertPolicyGates(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	tr.Policy[university.Grades] = RelationPolicy{AllowInsert: false, AllowModify: true}
	_, err := tr.Insert(reldb.Tuple{s("CS998"), s("T"), s("graduate"), iv(1), s("A")})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	// Rollback: the root insert must not have survived.
	if db.MustRelation(university.Courses).Has(reldb.Tuple{s("CS998")}) {
		t.Fatal("partial insert leaked")
	}
	tr.Policy[university.Courses] = RelationPolicy{AllowInsert: true, AllowModify: false}
	tr.Policy[university.Grades] = RelationPolicy{AllowInsert: true, AllowModify: true}
	_, err = tr.Insert(reldb.Tuple{s("CS345"), s("Conflicting"), s("graduate"), iv(2), s("B")})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

func TestFlatReplaceSameKeys(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	old := reldb.Tuple{s("CS345"), s("Database Systems"), s("graduate"), iv(1), s("A")}
	nu := reldb.Tuple{s("CS345"), s("Database Systems"), s("graduate"), iv(1), s("A+")}
	res, err := tr.Replace(old, nu)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replaces != 1 {
		t.Fatalf("result = %+v", res)
	}
	got, _ := db.MustRelation(university.Grades).Get(reldb.Tuple{s("CS345"), iv(1)})
	if got[3].MustString() != "A+" {
		t.Fatalf("grade = %v", got[3])
	}
	// Identical replace: zero ops.
	res, err = tr.Replace(nu, nu)
	if err != nil || res.Total() != 0 {
		t.Fatalf("identical replace: %+v, %v", res, err)
	}
}

// Flat root-key replacement does NOT propagate: grades stay under the old
// course id — another orphan source the view-object translation fixes.
func TestFlatReplaceRootKeyNoPropagation(t *testing.T) {
	db, g := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	old := reldb.Tuple{s("CS345"), s("Database Systems"), s("graduate"), iv(1), s("A")}
	nu := reldb.Tuple{s("EES345"), s("Database Systems"), s("graduate"), iv(1), s("A")}
	// The GRADES side also sees a key change (CourseID is in its key) and
	// inserts a new grade row.
	res, err := tr.Replace(old, nu)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replaces != 1 || res.Inserts != 1 {
		t.Fatalf("result = %+v", res)
	}
	// Old grades orphaned.
	in := &structural.Integrity{G: g}
	vs, err := in.Audit(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("flat key replacement should leave violations (it does not propagate)")
	}
}

func TestFlatReplaceKeyGate(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	tr.Policy[university.Courses] = RelationPolicy{AllowInsert: true, AllowModify: true, AllowKeyReplace: false}
	old := reldb.Tuple{s("CS345"), s("Database Systems"), s("graduate"), iv(1), s("A")}
	nu := reldb.Tuple{s("EES345"), s("Database Systems"), s("graduate"), iv(1), s("A")}
	if _, err := tr.Replace(old, nu); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

func TestFlatReplaceStale(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr := PermissiveTranslator(v)
	old := reldb.Tuple{s("GHOST"), s("X"), s("graduate"), iv(1), s("A")}
	nu := reldb.Tuple{s("GHOST"), s("Y"), s("graduate"), iv(1), s("A")}
	if _, err := tr.Replace(old, nu); !errors.Is(err, reldb.ErrNoSuchTuple) {
		t.Fatalf("err = %v", err)
	}
	_ = db
}

func TestKellerDialog(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v := courseGradesView(t, db)
	tr, tape, err := ChooseTranslator(v, ScriptedAnswerer{
		Answers: map[string]bool{"keller.GRADES.insert": false},
		Default: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// COURSES: insert, modify, keyreplace; GRADES: insert, modify.
	if len(tape) != 5 {
		t.Fatalf("asked %d questions, want 5:\n%s", len(tape), tape.Render())
	}
	text := tape.Render()
	for _, want := range []string{
		"Can new tuples be inserted into relation COURSES to implement view updates? <YES>",
		"Can the key of a tuple of the root relation COURSES be replaced? <YES>",
		"Can new tuples be inserted into relation GRADES to implement view updates? <NO>",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("transcript missing %q:\n%s", want, text)
		}
	}
	if tr.Policy[university.Grades].AllowInsert {
		t.Fatal("GRADES insert should be denied")
	}
	if !tr.Policy[university.Courses].AllowKeyReplace {
		t.Fatal("COURSES keyreplace should be allowed")
	}
	// Error propagation.
	boom := errors.New("boom")
	bad := answerFunc(func(Question) (bool, error) { return false, boom })
	if _, _, err := ChooseTranslator(v, bad); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

type answerFunc func(Question) (bool, error)

func (f answerFunc) Answer(q Question) (bool, error) { return f(q) }

func TestOuterJoinView(t *testing.T) {
	db, _ := university.MustNewSeeded()
	v, err := NewView(db, "courses-all",
		[]Join{
			{Relation: university.Courses},
			{Relation: university.Grades, Outer: true,
				LeftAttrs: []string{"COURSES.CourseID"}, RightAttrs: []string{"CourseID"}},
		}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := v.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// 17 matched rows; every course has at least one grade in the seed.
	if rs.Len() != 17 {
		t.Fatalf("rows = %d", rs.Len())
	}
}
