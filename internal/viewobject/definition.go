// Package viewobject implements the paper's view-object model (§3):
// object-based views over a relational database equipped with a structural
// schema. A view object ω is a set of projections over base relations,
// arranged into a tree rooted at a pivot relation whose key becomes the
// object key (Definitions 3.1-3.2).
//
// The package covers the full definition pipeline of Figure 2 —
//
//	subgraph extraction (information metric)  →  Figure 2(a)
//	tree expansion with circuit breaking      →  Figure 2(b)
//	pruning into a configuration              →  Figure 2(c)
//
// — plus instantiation (Figure 4): composing an object query with the
// object's structure, executing it against the database, and assembling
// the resulting relational tuples into hierarchical instances.
package viewobject

import (
	"fmt"
	"sort"
	"strings"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/structural"
)

// Node is one projection in a view object's tree: an occurrence of a base
// relation together with the projected attributes and the connection path
// linking it to its parent node. Because pruning may exclude intermediate
// relations, Path can span several connections (Figure 3's COURSES→STUDENT
// edge is a two-connection path through GRADES).
type Node struct {
	// ID uniquely names this node within the definition. It equals the
	// relation name when the relation occurs once, and "REL#k" for
	// further copies.
	ID string
	// Relation is the underlying base relation d(π).
	Relation string
	// Attrs are the projected attribute names, in schema order.
	Attrs []string
	// Path is the connection path from the parent node's relation to this
	// relation. It is nil for the root (pivot) node and has length ≥ 1
	// otherwise.
	Path []structural.Edge
	// Children are the sub-nodes, in definition order.
	Children []*Node

	parent *Node
}

// Parent returns the parent node (nil at the root).
func (n *Node) Parent() *Node { return n.parent }

// Definition is a validated view object ω: a tree of projections rooted at
// the pivot relation (Definition 3.2). Definitions are immutable once
// built; instances are produced by Instantiate.
type Definition struct {
	// Name labels the object (ω, ω′, ...).
	Name  string
	graph *structural.Graph
	root  *Node
	byID  map[string]*Node
	// schemas caches each node's base schema so that code running inside
	// a transaction (which holds the database lock) never needs to go
	// through Database.Relation again.
	schemas map[string]*reldb.Schema
	// obsSlot is the object name's slot in obs.Default.Objects, interned
	// at definition time so per-object metric increments (instantiation,
	// §5 pipeline steps) are slot-indexed and allocation-free.
	obsSlot int
}

// MetricSlot returns the object's slot in the obs.Default.Objects label
// dimension — the index every per-object metric family (CounterVec /
// HistogramVec over "object") is addressed with.
func (d *Definition) MetricSlot() int { return d.obsSlot }

// Graph returns the structural schema the object is defined over.
func (d *Definition) Graph() *structural.Graph { return d.graph }

// Root returns the pivot node.
func (d *Definition) Root() *Node { return d.root }

// Pivot returns the pivot relation's name.
func (d *Definition) Pivot() string { return d.root.Relation }

// Node returns the node with the given ID.
func (d *Definition) Node(id string) (*Node, bool) {
	n, ok := d.byID[id]
	return n, ok
}

// Nodes returns every node in preorder (root first).
func (d *Definition) Nodes() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(d.root)
	return out
}

// Complexity returns the number of projections in the object
// (Definition 3.1).
func (d *Definition) Complexity() int { return len(d.Nodes()) }

// Key returns the object key: the key attributes of the pivot relation
// (Definition 3.2).
func (d *Definition) Key() []string {
	return d.schemaOf(d.root).KeyNames()
}

// NewDefinition validates and assembles a definition from a hand-built
// node tree. Most callers construct definitions through Tree.Configure
// (the Figure 2 pipeline); this constructor serves tests and programmatic
// object construction. Validation enforces:
//
//   - the pivot projection includes every key attribute of the pivot
//     relation (Definition 3.2);
//   - no node other than the root is defined on the pivot relation;
//   - every node's attributes exist in its relation;
//   - every non-root node's path is nonempty, connects its parent's
//     relation to its own, and uses connections of the structural schema;
//   - node IDs are unique.
func NewDefinition(name string, g *structural.Graph, root *Node) (*Definition, error) {
	if root == nil {
		return nil, fmt.Errorf("viewobject: %s: nil root", name)
	}
	if len(root.Path) != 0 {
		return nil, fmt.Errorf("viewobject: %s: root must have an empty path", name)
	}
	d := &Definition{
		Name: name, graph: g, root: root,
		byID:    make(map[string]*Node),
		schemas: make(map[string]*reldb.Schema),
		obsSlot: obs.Default.Objects.Intern(name),
	}
	db := g.Database()

	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n != root && n.Relation == root.Relation {
			return fmt.Errorf("viewobject: %s: node %s is defined on the pivot relation %s (Definition 3.2 forbids this)",
				name, n.ID, root.Relation)
		}
		if n.ID == "" {
			n.ID = n.Relation
		}
		if _, dup := d.byID[n.ID]; dup {
			return fmt.Errorf("viewobject: %s: duplicate node ID %s", name, n.ID)
		}
		d.byID[n.ID] = n
		rel, err := db.Relation(n.Relation)
		if err != nil {
			return fmt.Errorf("viewobject: %s: node %s: %w", name, n.ID, err)
		}
		schema := rel.Schema()
		d.schemas[n.ID] = schema
		if len(n.Attrs) == 0 {
			n.Attrs = schema.AttrNames()
		}
		if _, err := schema.Indices(n.Attrs); err != nil {
			return fmt.Errorf("viewobject: %s: node %s: %w", name, n.ID, err)
		}
		if n != root {
			if len(n.Path) == 0 {
				return fmt.Errorf("viewobject: %s: node %s has no connection path", name, n.ID)
			}
			cur := n.parent.Relation
			for i, e := range n.Path {
				if e.Conn == nil {
					return fmt.Errorf("viewobject: %s: node %s path step %d has no connection", name, n.ID, i)
				}
				if found, ok := g.Connection(e.Conn.Name); !ok || found != e.Conn {
					return fmt.Errorf("viewobject: %s: node %s path step %d uses connection %q not in the structural schema",
						name, n.ID, i, e.Conn.Name)
				}
				if e.Source() != cur {
					return fmt.Errorf("viewobject: %s: node %s path step %d starts at %s, want %s",
						name, n.ID, i, e.Source(), cur)
				}
				cur = e.Target()
			}
			if cur != n.Relation {
				return fmt.Errorf("viewobject: %s: node %s path ends at %s, want %s",
					name, n.ID, cur, n.Relation)
			}
		}
		for _, c := range n.Children {
			c.parent = n
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}

	// Definition 3.2: the pivot projection must include the whole key.
	pivotSchema := db.MustRelation(root.Relation).Schema()
	for _, kn := range pivotSchema.KeyNames() {
		found := false
		for _, a := range root.Attrs {
			if a == kn {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("viewobject: %s: pivot projection must include key attribute %s of %s",
				name, kn, root.Relation)
		}
	}
	return d, nil
}

// MustDefinition is NewDefinition that panics on error (fixtures).
func MustDefinition(name string, g *structural.Graph, root *Node) *Definition {
	d, err := NewDefinition(name, g, root)
	if err != nil {
		panic(err)
	}
	return d
}

// schemaOf returns the base schema of a node's relation, from the cache
// built at definition time (safe inside transactions).
func (d *Definition) schemaOf(n *Node) *reldb.Schema {
	return d.schemas[n.ID]
}

// NodeSchema returns the base schema of a node's relation. The schema is
// cached at definition time, so the call is safe inside a transaction
// that holds the database lock.
func (d *Definition) NodeSchema(n *Node) *reldb.Schema { return d.schemaOf(n) }

// Render produces the deterministic text form of the definition used by
// the figure generator: one line per node showing depth, connection path,
// and projected attributes, e.g.
//
//	COURSES (CourseID, Title, DeptName, Units, Level)
//	├─ --> DEPARTMENT (DeptName, Building)
//	└─ --* GRADES (CourseID, PID, Grade)
//	   └─ inv(--*) STUDENT (PID, Degree)
func (d *Definition) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "view object %s (pivot %s, key %s, complexity %d)\n",
		d.Name, d.Pivot(), strings.Join(d.Key(), ","), d.Complexity())
	var walk func(n *Node, prefix string, last bool)
	walk = func(n *Node, prefix string, last bool) {
		if n == d.root {
			fmt.Fprintf(&b, "%s (%s)\n", n.ID, strings.Join(n.Attrs, ", "))
		} else {
			branch := "├─ "
			if last {
				branch = "└─ "
			}
			fmt.Fprintf(&b, "%s%s%s %s (%s)\n", prefix, branch, pathLabel(n.Path), n.ID, strings.Join(n.Attrs, ", "))
		}
		childPrefix := prefix
		if n != d.root {
			if last {
				childPrefix += "   "
			} else {
				childPrefix += "│  "
			}
		}
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1)
		}
	}
	walk(d.root, "", true)
	return b.String()
}

// pathLabel renders a connection path compactly: one symbol per edge.
func pathLabel(path []structural.Edge) string {
	parts := make([]string, len(path))
	for i, e := range path {
		sym := e.Conn.Type.Symbol()
		if !e.Forward {
			sym = "inv(" + sym + ")"
		}
		parts[i] = sym
	}
	return strings.Join(parts, "·")
}

// sortedNodeIDs returns all node IDs, sorted (for deterministic errors
// and renderings).
func (d *Definition) sortedNodeIDs() []string {
	ids := make([]string, 0, len(d.byID))
	for id := range d.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
