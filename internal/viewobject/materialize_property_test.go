package viewobject_test

import (
	"fmt"
	"math/rand"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
	"penguin/internal/workload"
)

// The materialization differential property (mirroring the
// naive/batched/parallel assembly harness): drive a random stream of
// VO-R / VO-CD / VO-CI update translations through the database and,
// at every observed generation, the materialized cache must serve the
// full extent element-wise byte-identical to a fresh instantiation over
// a snapshot of the same generation — through arbitrary interleavings
// of membership changes, island restamps, and (for the small-buffer
// materializer) forced overflow resyncs.
func TestMaterializedDifferentialRandomStream(t *testing.T) {
	spec := workload.TreeSpec{Depth: 2, Width: 2, Fanout: 2, Roots: 5, Peninsulas: 1}
	w, err := workload.BuildTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	u := vupdate.NewUpdater(vupdate.PermissiveTranslator(w.Def))

	// Two caches over the same stream: one with ample buffering (every
	// divergence is a patching bug) and one with a single-slot queue that
	// overflows whenever a burst commits more than once between serves
	// (every divergence is a resync bug).
	patched := viewobject.NewMaterializer(w.DB, w.Def)
	defer patched.Close()
	tiny := viewobject.NewMaterializer(w.DB, w.Def)
	defer tiny.Close()
	tiny.SetDeltaBuffer(1)

	key := func(k int64) reldb.Tuple { return reldb.Tuple{reldb.Int(k)} }
	fetch := func(k int64) (*viewobject.Instance, bool) {
		t.Helper()
		rtx := w.DB.BeginRead()
		defer rtx.Close()
		inst, ok, err := viewobject.InstantiateByKey(rtx, w.Def, key(k))
		if err != nil {
			t.Fatal(err)
		}
		return inst, ok
	}
	stamp := func(k int64, s string) *viewobject.Instance {
		t.Helper()
		cur, ok := fetch(k)
		if !ok {
			t.Fatalf("stamp: no instance with key %d", k)
		}
		st := cur.Clone()
		for _, relName := range w.IslandRels {
			for _, n := range st.NodesAt(relName) {
				if err := n.SetAttr(w.Def, "V", reldb.String(s)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := u.ReplaceInstance(cur, st); err != nil {
			t.Fatalf("VO-R key %d: %v", k, err)
		}
		return st
	}

	// parked holds the last materialized form of each deleted instance,
	// for VO-CI to re-insert.
	parked := map[int64]*viewobject.Instance{}

	compare := func(step int) {
		t.Helper()
		rtx := w.DB.BeginRead()
		want, err := viewobject.Instantiate(rtx, w.Def, viewobject.Query{})
		rtx.Close()
		if err != nil {
			t.Fatal(err)
		}
		for name, m := range map[string]*viewobject.Materializer{"patched": patched, "tiny": tiny} {
			got, err := m.Instantiate(viewobject.Query{})
			if err != nil {
				t.Fatalf("step %d: %s: %v", step, name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("step %d: %s serves %d instances, fresh %d", step, name, len(got), len(want))
			}
			for i := range got {
				if g, f := got[i].Render(), want[i].Render(); g != f {
					t.Fatalf("step %d: %s instance %d diverged\nmaterialized:\n%s\nfresh:\n%s", step, name, i, g, f)
				}
			}
		}
	}

	rng := rand.New(rand.NewSource(17))
	compare(0)
	for step := 1; step <= 60; step++ {
		// A burst of 1-3 translations between serves exercises multi-batch
		// patching (and overflows the tiny queue).
		for b := rng.Intn(3) + 1; b > 0; b-- {
			k := int64(rng.Intn(spec.Roots))
			switch rng.Intn(3) {
			case 0: // VO-R (or revive first if the key is deleted)
				if _, dead := parked[k]; dead {
					continue
				}
				stamp(k, fmt.Sprintf("s%d", step))
			case 1: // VO-CD
				if _, dead := parked[k]; dead {
					continue
				}
				inst, ok := fetch(k)
				if !ok {
					t.Fatalf("step %d: key %d vanished outside VO-CD", step, k)
				}
				if _, err := u.DeleteByKey(key(k)); err != nil {
					t.Fatalf("step %d: VO-CD key %d: %v", step, k, err)
				}
				parked[k] = inst
			default: // VO-CI
				inst, dead := parked[k]
				if !dead {
					continue
				}
				if _, err := u.InsertInstance(inst); err != nil {
					t.Fatalf("step %d: VO-CI key %d: %v", step, k, err)
				}
				delete(parked, k)
			}
		}
		compare(step)
	}
}
