package viewobject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/structural"
)

// naiveAssembly selects the parent-at-a-time assembly path instead of the
// level-at-a-time batched one. It exists so differential tests can prove
// the two paths produce identical instances; the batched path is the
// default and the one production callers get.
var naiveAssembly atomic.Bool

// SetNaiveAssembly switches instance assembly to the naive
// parent-at-a-time path (true) or the batched level-at-a-time path
// (false, the default), returning the previous setting. Tests only.
func SetNaiveAssembly(on bool) bool { return naiveAssembly.Swap(on) }

// Query is a declarative request over a view object (the paper's query
// model, §3). It combines a selection on the pivot relation, existential
// predicates on component nodes, and cardinality conditions on component
// sets — enough to express Figure 4's "graduate courses with less than 5
// students having enrolled":
//
//	Query{
//	    PivotPred:  reldb.Eq("Level", reldb.String("graduate")),
//	    CountConds: []CountCond{{NodeID: "STUDENT", Op: reldb.OpLt, N: 5}},
//	}
type Query struct {
	// PivotPred filters pivot tuples; nil selects all. It is evaluated
	// against the pivot relation's full schema.
	PivotPred reldb.Expr
	// NodePreds keep an instance only if, for each entry, at least one
	// component at the node satisfies the predicate.
	NodePreds []NodePred
	// CountConds keep an instance only if, for each entry, the number of
	// components at the node compares as requested.
	CountConds []CountCond
}

// NodePred is an existential predicate on a component node.
type NodePred struct {
	NodeID string
	Pred   reldb.Expr
}

// CountCond compares the number of components at a node with a constant.
type CountCond struct {
	NodeID string
	Op     reldb.CmpOp
	N      int
}

// Instantiate composes the query with the object's structure, executes it
// against the database reachable through res, and assembles the matching
// hierarchical instances (Figure 4). Results are in pivot-key order.
//
// When the effective Parallelism is above 1 and the pivot frontier is
// large enough, assembly fans out across a bounded worker pool (see
// parallel.go); the output — contents and order — is identical to a
// sequential run.
func Instantiate(res structural.Resolver, def *Definition, q Query) ([]*Instance, error) {
	return InstantiateOp(res, def, q, obs.Op{})
}

// InstantiateOp is Instantiate under a causal trace context: the
// instantiation becomes a child span of parent when parent is active
// (e.g. a materializer rebuild inside a traced serve) and a root span
// of its own when tracing is on but parent is not. Parallel fan-out
// reports each chunk as a child span, so the span tree shows where the
// pool spent its time.
func InstantiateOp(res structural.Resolver, def *Definition, q Query, parent obs.Op) ([]*Instance, error) {
	start := time.Now()
	op := obs.Default.OpUnder(parent, "viewobject.instantiate")
	pivotRel, err := res.Relation(def.Pivot())
	if err != nil {
		return nil, err
	}
	workers := Parallelism()
	pivots, scanned, err := pivotSelect(pivotRel, q.PivotPred, workers)
	if err != nil {
		return nil, fmt.Errorf("viewobject: %s: pivot selection: %w", def.Name, err)
	}
	// Counted only on success: an errored selection did not complete.
	obs.Default.TuplesScanned.Add(scanned)
	obs.Default.InstTuplesByObject.At(def.obsSlot).Add(scanned)
	var instances []*Instance
	switch {
	case naiveAssembly.Load():
		for _, pt := range pivots {
			inst, err := assembleInstance(res, def, pt)
			if err != nil {
				return nil, err
			}
			instances = append(instances, inst)
		}
	case workers > 1 && len(pivots) >= minParallelPivots:
		pstart := time.Now()
		instances, err = instantiateParallel(res, def, pivots, workers, op)
		if err != nil {
			return nil, err
		}
		pdur := time.Since(pstart).Nanoseconds()
		obs.Default.InstantiateParallelNs.Observe(pdur)
		obs.Default.InstantiateParallelNsByObject.At(def.obsSlot).Observe(pdur)
	default:
		instances, err = assembleBatch(res, def, pivots)
		if err != nil {
			return nil, err
		}
	}
	var out []*Instance
	for _, inst := range instances {
		keep, err := inst.matches(q)
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, inst)
		}
	}
	obs.Default.Instantiations.Inc()
	obs.Default.InstCallsByObject.At(def.obsSlot).Inc()
	dur := time.Since(start).Nanoseconds()
	obs.Default.InstantiateNs.Observe(dur)
	obs.Default.InstantiateNsByObject.At(def.obsSlot).Observe(dur)
	if op.Active() {
		op.Finish(fmt.Sprintf("object=%s instances=%d", def.Name, len(out)))
	}
	return out, nil
}

// pivotSelect picks the pivot tuples satisfying pred, in primary-key
// order, and reports how many stored tuples the selection visited.
// When pred is an indexable equality conjunction (EqConjunction +
// ProbeableEqual) it runs as a MatchEqual probe charging only the
// tuples actually visited; when it is a range conjunction over one
// attribute (RangeConjunction + ProbeableRange) it binary-searches the
// relation version's cached ordered view, charging a full scan only the
// first time the view is built; otherwise it scans — in parallel when
// the relation and worker budget warrant it — charging the whole
// relation, which is what a scan visits. Both the naive and batched
// assembly paths share this selection, so their pivot sets (and scan
// accounting) are identical by construction.
func pivotSelect(pivotRel *reldb.Relation, pred reldb.Expr, workers int) ([]reldb.Tuple, int64, error) {
	if pred != nil {
		if attrs, vals, ok := reldb.EqConjunction(pred); ok && pivotRel.ProbeableEqual(attrs, vals) {
			var st reldb.MatchStats
			pivots, err := pivotRel.MatchEqualStats(attrs, vals, &st)
			if err != nil {
				return nil, 0, err
			}
			return pivots, int64(st.Scanned), nil
		}
		if attr, lo, hi, ok := reldb.RangeConjunction(pred); ok && pivotRel.ProbeableRange(attr, lo, hi) {
			var st reldb.MatchStats
			pivots, err := pivotRel.MatchRangeStats(attr, lo, hi, &st)
			if err != nil {
				return nil, 0, err
			}
			return pivots, int64(st.Scanned), nil
		}
	}
	pivots, err := pivotRel.SelectParallel(pred, workers)
	if err != nil {
		return nil, 0, err
	}
	return pivots, int64(pivotRel.Count()), nil
}

// assembleBatch runs the batched level-at-a-time assembly over a slice
// of pivot tuples: create every root first, then fill the whole forest
// level-at-a-time so all pivots' children at the same definition node
// come from one batched fetch. It is the sequential unit of work — the
// parallel path calls it once per pivot chunk.
func assembleBatch(res structural.Resolver, def *Definition, pivots []reldb.Tuple) ([]*Instance, error) {
	if len(pivots) == 0 {
		return nil, nil
	}
	instances := make([]*Instance, 0, len(pivots))
	roots := make([]*InstNode, 0, len(pivots))
	for _, pt := range pivots {
		inst, err := NewInstance(def, pt)
		if err != nil {
			return nil, err
		}
		obs.Default.InstNodes.Inc() // the root component
		obs.Default.InstNodesByObject.At(def.obsSlot).Inc()
		instances = append(instances, inst)
		roots = append(roots, inst.root)
	}
	if err := fillLevel(res, def, roots); err != nil {
		return nil, err
	}
	return instances, nil
}

// InstantiateByKey assembles the single instance whose object key equals
// key, or reports ok=false if the pivot tuple does not exist.
func InstantiateByKey(res structural.Resolver, def *Definition, key reldb.Tuple) (*Instance, bool, error) {
	return InstantiateByKeyOp(res, def, key, obs.Op{})
}

// InstantiateByKeyOp is InstantiateByKey under a causal trace context
// (see InstantiateOp).
func InstantiateByKeyOp(res structural.Resolver, def *Definition, key reldb.Tuple, parent obs.Op) (*Instance, bool, error) {
	start := time.Now()
	op := obs.Default.OpUnder(parent, "viewobject.instantiate_by_key")
	pivotRel, err := res.Relation(def.Pivot())
	if err != nil {
		return nil, false, err
	}
	pt, ok := pivotRel.Get(key)
	obs.Default.TuplesScanned.Inc() // the keyed pivot lookup
	obs.Default.InstTuplesByObject.At(def.obsSlot).Inc()
	if !ok {
		if op.Active() {
			op.Finish(fmt.Sprintf("object=%s key=%s absent", def.Name, key))
		}
		return nil, false, nil
	}
	inst, err := assembleInstance(res, def, pt)
	if err != nil {
		return nil, false, err
	}
	obs.Default.Instantiations.Inc()
	obs.Default.InstCallsByObject.At(def.obsSlot).Inc()
	dur := time.Since(start).Nanoseconds()
	obs.Default.InstantiateNs.Observe(dur)
	obs.Default.InstantiateNsByObject.At(def.obsSlot).Observe(dur)
	if op.Active() {
		op.Finish(fmt.Sprintf("object=%s key=%s", def.Name, key))
	}
	return inst, true, nil
}

func assembleInstance(res structural.Resolver, def *Definition, pivotTuple reldb.Tuple) (*Instance, error) {
	inst, err := NewInstance(def, pivotTuple)
	if err != nil {
		return nil, err
	}
	obs.Default.InstNodes.Inc() // the root component
	obs.Default.InstNodesByObject.At(def.obsSlot).Inc()
	if naiveAssembly.Load() {
		if err := fillChildren(res, def, inst.root); err != nil {
			return nil, err
		}
		return inst, nil
	}
	if err := fillLevel(res, def, []*InstNode{inst.root}); err != nil {
		return nil, err
	}
	return inst, nil
}

// fillLevel assembles the components below parents level-at-a-time. All
// parents sit at the same definition node; for each child node, the
// connecting paths of every parent are crossed together (one batched
// lookup per path edge for the whole level) and the results distributed
// back, preserving the per-parent key ordering and dedup semantics of the
// naive path. The freshly built level then recurses as one batch.
//
// A level whose parent set is large enough may be split across idle
// worker tokens (work stealing, see parallel.go): helper goroutines fill
// disjoint contiguous parent segments concurrently and the segment
// results concatenate back in parent order, so the assembled instances
// are identical to a sequential fill.
func fillLevel(res structural.Resolver, def *Definition, parents []*InstNode) error {
	if len(parents) == 0 {
		return nil
	}
	for _, child := range parents[0].node.Children {
		level, err := fillChildLevel(res, def, parents, child)
		if err != nil {
			return err
		}
		obs.Default.LevelFanOut.Observe(int64(len(level)))
		if err := fillLevel(res, def, level); err != nil {
			return err
		}
	}
	return nil
}

// fillChildLevel builds every parent's children at one definition node,
// splitting the parent set across stolen worker tokens when the level is
// wide and spare parallelism exists. Each segment touches only its own
// parents (AddChild mutates nothing outside the parent node), so the
// helpers need no locks; segment results concatenate in parent order.
func fillChildLevel(res structural.Resolver, def *Definition, parents []*InstNode, child *Node) ([]*InstNode, error) {
	helpers := 0
	if len(parents) >= 2*minStealParents {
		helpers = grabStealTokens(len(parents)/minStealParents - 1)
	}
	if helpers == 0 {
		return fillChildSegment(res, def, parents, child)
	}
	defer releaseStealTokens(helpers)
	obs.Default.ParallelSteals.Add(int64(helpers))
	segs := helpers + 1
	per := (len(parents) + segs - 1) / segs
	results := make([][]*InstNode, segs)
	errs := make([]error, segs)
	var wg sync.WaitGroup
	for s := 1; s < segs; s++ {
		lo, hi := s*per, (s+1)*per
		if hi > len(parents) {
			hi = len(parents)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			results[s], errs[s] = fillChildSegment(res, def, parents[lo:hi], child)
		}(s, lo, hi)
	}
	results[0], errs[0] = fillChildSegment(res, def, parents[:per], child)
	wg.Wait()
	total := 0
	for s := 0; s < segs; s++ {
		if errs[s] != nil {
			return nil, errs[s] // lowest-segment error wins: deterministic
		}
		total += len(results[s])
	}
	level := make([]*InstNode, 0, total)
	for _, seg := range results {
		level = append(level, seg...)
	}
	return level, nil
}

// fillChildSegment is the sequential unit of a level fill: one batched
// traversal for a contiguous run of parents, results attached in
// per-parent key order.
func fillChildSegment(res structural.Resolver, def *Definition, parents []*InstNode, child *Node) ([]*InstNode, error) {
	var st reldb.MatchStats
	perParent, err := traverseLevel(res, parents, child.Path, &st)
	if err != nil {
		return nil, fmt.Errorf("viewobject: %s: node %s: %w", def.Name, child.ID, err)
	}
	obs.Default.TuplesScanned.Add(int64(st.Scanned))
	obs.Default.InstTuplesByObject.At(def.obsSlot).Add(int64(st.Scanned))
	var level []*InstNode
	for i, p := range parents {
		targets := perParent[i]
		obs.Default.NodeFanOut.Observe(int64(len(targets)))
		for _, tt := range targets {
			cn, err := p.AddChild(def, child.ID, tt)
			if err != nil {
				return nil, err
			}
			obs.Default.InstNodes.Inc()
			obs.Default.InstNodesByObject.At(def.obsSlot).Inc()
			level = append(level, cn)
		}
	}
	return level, nil
}

// traverseLevel follows one connection path for many source nodes at
// once. The result is aligned with parents: out[i] holds the distinct
// tuples parents[i] reaches at the far end, in the same order the naive
// TraversePath would produce (per-step key order, first-seen dedup).
// Each edge costs one batched lookup for the whole level.
func traverseLevel(res structural.Resolver, parents []*InstNode, path []structural.Edge, st *reldb.MatchStats) ([][]reldb.Tuple, error) {
	frontiers := make([][]reldb.Tuple, len(parents))
	for i, p := range parents {
		frontiers[i] = []reldb.Tuple{p.tuple}
	}
	for _, e := range path {
		// Flatten the per-parent frontiers, remembering each parent's
		// segment so results can be distributed back.
		var flat []reldb.Tuple
		offs := make([]int, len(parents)+1)
		for i, fr := range frontiers {
			offs[i] = len(flat)
			flat = append(flat, fr...)
		}
		offs[len(parents)] = len(flat)
		if len(flat) == 0 {
			break
		}
		results, err := structural.ConnectedViaBatchStats(res, e, flat, st)
		if err != nil {
			return nil, err
		}
		obs.Default.BatchedLookups.Inc()
		tgtRel, err := res.Relation(e.Target())
		if err != nil {
			return nil, err
		}
		tgtSchema := tgtRel.Schema()
		for i := range parents {
			seen := make(map[string]bool)
			var next []reldb.Tuple
			for _, matches := range results[offs[i]:offs[i+1]] {
				for _, mt := range matches {
					ek := tgtSchema.EncodeKeyOf(mt)
					if seen[ek] {
						continue
					}
					seen[ek] = true
					next = append(next, mt)
				}
			}
			frontiers[i] = next
		}
	}
	return frontiers, nil
}

func fillChildren(res structural.Resolver, def *Definition, in *InstNode) error {
	for _, child := range in.node.Children {
		var st reldb.MatchStats
		targets, err := traversePath(res, in.tuple, child.Path, &st)
		if err != nil {
			return fmt.Errorf("viewobject: %s: node %s: %w", def.Name, child.ID, err)
		}
		obs.Default.TuplesScanned.Add(int64(st.Scanned))
		obs.Default.InstTuplesByObject.At(def.obsSlot).Add(int64(st.Scanned))
		obs.Default.NodeFanOut.Observe(int64(len(targets)))
		for _, tt := range targets {
			cn, err := in.AddChild(def, child.ID, tt)
			if err != nil {
				return err
			}
			obs.Default.InstNodes.Inc()
			obs.Default.InstNodesByObject.At(def.obsSlot).Inc()
			if err := fillChildren(res, def, cn); err != nil {
				return err
			}
		}
	}
	return nil
}

// TraversePath follows a connection path starting from one source tuple
// and returns the distinct tuples reached at the far end, in key order at
// each step. Intermediate relations contribute join steps only; their
// tuples are not returned.
func TraversePath(res structural.Resolver, start reldb.Tuple, path []structural.Edge) ([]reldb.Tuple, error) {
	return traversePath(res, start, path, nil)
}

func traversePath(res structural.Resolver, start reldb.Tuple, path []structural.Edge, st *reldb.MatchStats) ([]reldb.Tuple, error) {
	frontier := []reldb.Tuple{start}
	for _, e := range path {
		tgtRel, err := res.Relation(e.Target())
		if err != nil {
			return nil, err
		}
		tgtSchema := tgtRel.Schema()
		seen := make(map[string]bool)
		var next []reldb.Tuple
		for _, ft := range frontier {
			matches, err := structural.ConnectedViaStats(res, e, ft, st)
			if err != nil {
				return nil, err
			}
			for _, mt := range matches {
				ek := tgtSchema.EncodeKeyOf(mt)
				if seen[ek] {
					continue
				}
				seen[ek] = true
				next = append(next, mt)
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return nil, nil
		}
	}
	return frontier, nil
}

// matches evaluates the query's node predicates and count conditions
// against an assembled instance.
func (i *Instance) matches(q Query) (bool, error) {
	for _, np := range q.NodePreds {
		node, ok := i.def.Node(np.NodeID)
		if !ok {
			return false, fmt.Errorf("viewobject: %s: query references unknown node %s", i.def.Name, np.NodeID)
		}
		schema := i.def.schemaOf(node)
		sat := false
		for _, in := range i.NodesAt(np.NodeID) {
			ok, err := reldb.EvalBool(np.Pred, reldb.Row{Schema: schema, Tuple: in.tuple})
			if err != nil {
				return false, fmt.Errorf("viewobject: %s: node predicate on %s: %w", i.def.Name, np.NodeID, err)
			}
			if ok {
				sat = true
				break
			}
		}
		if !sat {
			return false, nil
		}
	}
	for _, cc := range q.CountConds {
		if _, ok := i.def.Node(cc.NodeID); !ok {
			return false, fmt.Errorf("viewobject: %s: query counts unknown node %s", i.def.Name, cc.NodeID)
		}
		n := i.Count(cc.NodeID)
		cmp := reldb.Cmp{Op: cc.Op, L: reldb.Const{V: reldb.Int(int64(n))}, R: reldb.Const{V: reldb.Int(int64(cc.N))}}
		ok, err := reldb.EvalBool(cmp, reldb.Row{})
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
