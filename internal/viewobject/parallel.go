package viewobject

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/structural"
)

// parallelismSetting holds the configured worker budget for parallel
// instantiation: 0 means "track GOMAXPROCS" (the default), any positive
// value is an explicit override.
var parallelismSetting atomic.Int32

// minParallelPivots is the pivot-frontier size below which Instantiate
// stays sequential: worker startup and result merging cost more than
// assembling a handful of instances inline.
const minParallelPivots = 4

// chunksPerWorker oversubscribes the chunk count relative to the worker
// pool so a chunk that happens to carry deep instances does not leave
// the other workers idle at the tail.
const chunksPerWorker = 4

func init() {
	if s := os.Getenv("PENGUIN_PARALLELISM"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			parallelismSetting.Store(int32(n))
		}
	}
}

// SetParallelism sets the worker budget for parallel instantiation and
// returns the previous setting. n > 0 fixes the budget; n <= 0 restores
// the default of tracking GOMAXPROCS (reported as 0). A budget of 1
// disables parallel fan-out entirely.
func SetParallelism(n int) int {
	if n < 0 {
		n = 0
	}
	return int(parallelismSetting.Swap(int32(n)))
}

// Parallelism returns the effective worker budget: the explicit setting
// if one is in force (SetParallelism or PENGUIN_PARALLELISM), otherwise
// GOMAXPROCS.
func Parallelism() int {
	if n := parallelismSetting.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// minStealParents is the smallest parent-segment size worth handing to a
// stolen worker: below this the traversal batching already amortizes the
// lookups and a goroutine handoff costs more than it saves.
const minStealParents = 8

// stealActive counts helper goroutines currently running stolen level
// segments, across every instantiation in the process. The budget is
// Parallelism()-1 — the caller's own goroutine is the "+1" — so a lone
// deep instantiation can fan a wide level across otherwise-idle CPUs,
// while saturated pools (every worker busy) steal nothing and pay
// nothing beyond one atomic load per level.
var stealActive atomic.Int32

// grabStealTokens claims up to max helper tokens from the global steal
// budget, returning how many were claimed (possibly 0).
func grabStealTokens(max int) int {
	if max <= 0 {
		return 0
	}
	for {
		cur := stealActive.Load()
		budget := int32(Parallelism() - 1)
		if cur >= budget {
			return 0
		}
		take := budget - cur
		if take > int32(max) {
			take = int32(max)
		}
		if stealActive.CompareAndSwap(cur, cur+take) {
			return int(take)
		}
	}
}

// releaseStealTokens returns claimed tokens to the budget.
func releaseStealTokens(n int) {
	stealActive.Add(int32(-n))
}

// instantiateParallel assembles the pivot frontier on a bounded worker
// pool: the pivots (already in key order) are split into contiguous
// chunks, workers pull chunk indexes from a shared cursor and assemble
// each chunk with the same batched level-at-a-time path the sequential
// route uses, and the per-chunk results concatenate back in chunk order
// — so the output is byte-identical to a sequential assembly, pivot-key
// order included. On error the workers drain cleanly (remaining chunks
// are claimed but skipped) and the error of the lowest-indexed failing
// chunk wins, making the reported error deterministic.
//
// Safety: res resolves against an immutable committed snapshot (the
// ReadTx discipline), each instance subtree is touched by exactly one
// worker, and all shared metric sinks are atomic — so workers need no
// locks of their own.
func instantiateParallel(res structural.Resolver, def *Definition, pivots []reldb.Tuple, workers int, op obs.Op) ([]*Instance, error) {
	nchunks := workers * chunksPerWorker
	if nchunks > len(pivots) {
		nchunks = len(pivots)
	}
	if workers > nchunks {
		workers = nchunks
	}
	per := (len(pivots) + nchunks - 1) / nchunks
	results := make([][]*Instance, nchunks)
	errs := make([]error, nchunks)
	var cursor atomic.Int32
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= nchunks {
					return
				}
				if failed.Load() {
					continue // drain: claim remaining chunks without work
				}
				lo := i * per
				hi := lo + per
				if hi > len(pivots) {
					hi = len(pivots)
				}
				// Op is a value whose shared state is atomic/locked, so
				// each worker can hang its chunk spans off the same
				// parent; the tree stays connected across the pool.
				cop := op.Child("viewobject.chunk")
				insts, err := assembleBatch(res, def, pivots[lo:hi])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				if cop.Active() {
					cop.Finish(fmt.Sprintf("chunk=%d pivots=%d", i, hi-lo))
				}
				results[i] = insts
			}
		}()
	}
	wg.Wait()
	obs.Default.ParallelWorkers.Add(int64(workers))
	obs.Default.ParallelChunks.Add(int64(nchunks))
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]*Instance, 0, len(pivots))
	for _, chunk := range results {
		out = append(out, chunk...)
	}
	return out, nil
}
