// Materialized view-object cache: a Materializer keeps the full extent
// of a view object's instances pinned to the generation they were built
// at and consumes the reldb delta stream to keep them fresh, mapping
// each committed delta through the definition tree instead of paying
// full re-instantiation on every read.
//
// Patch-versus-fallback decision per delta:
//
//   - pivot-relation tuples → membership: an insert builds the new
//     instance, a delete drops it, a same-key replace rebuilds it;
//   - tuples of any other relation on a definition path → localized:
//     the affected pivot keys are found by traversing the reversed
//     connection path(s) from the changed tuple images back to the
//     pivot, and exactly those instances are rebuilt from the snapshot;
//   - structural deltas (relation-level DDL) touching a definition
//     relation, pivot deltas when the pivot also appears mid-path, or a
//     generation gap → the plan cannot localize: invalidate and lazily
//     re-instantiate through the existing (parallel) path;
//   - a delta-stream overflow → resync: the cache lost history and
//     rebuilds from a fresh snapshot.
//
// The differential guarantee — a patched instance is byte-identical to
// a fresh instantiation at the same generation — holds by construction:
// patched instances are produced by the same assembleBatch the fresh
// path uses, against a snapshot of the same generation the cache is
// synced to, and affected-pivot discovery over-approximates (rebuilding
// an unaffected instance reproduces it exactly).
package viewobject

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/structural"
)

// Materializer caches the instances of one view object over one
// database and keeps them fresh from the per-commit delta stream. All
// methods are safe for concurrent use; reads serialize on the cache
// (the win is amortized patching, not read fan-out).
type Materializer struct {
	db  *reldb.Database
	def *Definition

	mu      sync.Mutex
	sub     *reldb.Subscription
	buffer  int
	insts   map[string]*Instance // full extent, by encoded pivot key
	keys    []string             // encoded pivot keys, sorted
	gen     uint64               // generation the cache reflects
	valid   bool
	pending []reldb.DeltaBatch // polled but not yet applied (Gen > gen)

	pivotRel    string
	pivotSchema *reldb.Schema
	// revPaths maps each relation on a definition path to the reversed
	// connection path(s) leading from it back to the pivot; traversing
	// one from a changed tuple image yields the candidate affected
	// pivots.
	revPaths map[string][][]structural.Edge
	// defRels is every relation the definition touches (pivot, node
	// relations, and path intermediates); structural DDL on any of them
	// invalidates the cache.
	defRels map[string]bool
	// pivotOnPath marks definitions whose paths route through the pivot
	// relation mid-way: pivot deltas then affect more than membership,
	// so they invalidate instead of patching.
	pivotOnPath bool
}

// NewMaterializer creates a materializer for def's instances over db.
// The cache builds lazily on the first read.
func NewMaterializer(db *reldb.Database, def *Definition) *Materializer {
	m := &Materializer{
		db:          db,
		def:         def,
		pivotRel:    def.Pivot(),
		pivotSchema: def.schemaOf(def.root),
		revPaths:    make(map[string][][]structural.Edge),
		defRels:     map[string]bool{def.Pivot(): true},
	}
	// Precompute, for every relation at every step of every node's full
	// pivot-to-node path, the reversed edge prefix leading back to the
	// pivot. Parent prefixes are registered once (children extend them).
	full := map[*Node][]structural.Edge{def.root: nil}
	for _, n := range def.Nodes() {
		if n == def.root {
			continue
		}
		parentLen := len(full[n.Parent()])
		fp := make([]structural.Edge, 0, parentLen+len(n.Path))
		fp = append(append(fp, full[n.Parent()]...), n.Path...)
		full[n] = fp
		for i := parentLen; i < len(fp); i++ {
			rel := fp[i].Target()
			m.defRels[rel] = true
			if rel == m.pivotRel {
				m.pivotOnPath = true
				continue
			}
			rev := make([]structural.Edge, 0, i+1)
			for j := i; j >= 0; j-- {
				rev = append(rev, structural.Edge{Conn: fp[j].Conn, Forward: !fp[j].Forward})
			}
			m.revPaths[rel] = append(m.revPaths[rel], rev)
		}
	}
	return m
}

// SetDeltaBuffer sets the delta-subscription queue capacity used when
// the cache first syncs (reldb.DefaultDeltaBuffer when unset). Only
// effective before the first read; tests use it to force overflows.
func (m *Materializer) SetDeltaBuffer(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buffer = n
}

// Generation returns the commit generation the cache currently
// reflects (0 before the first read).
func (m *Materializer) Generation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// Len returns the number of cached instances.
func (m *Materializer) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.insts)
}

// Close unsubscribes from the delta stream and drops the cache. The
// materializer resubscribes and rebuilds if read again.
func (m *Materializer) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sub != nil {
		m.sub.Close()
		m.sub = nil
	}
	m.insts, m.keys, m.pending = nil, nil, nil
	m.valid = false
}

// Instantiate serves the object query from the materialized cache,
// patching it fresh first. Results — contents and order — are identical
// to Instantiate over a snapshot of the same generation.
func (m *Materializer) Instantiate(q Query) ([]*Instance, error) {
	op := obs.Default.StartOp("viewobject.materialize.serve")
	m.mu.Lock()
	defer m.mu.Unlock()
	rtx, err := m.syncLocked(op)
	if err != nil {
		return nil, err
	}
	if rtx != nil {
		rtx.Close()
	}
	var out []*Instance
	for _, ek := range m.keys {
		inst := m.insts[ek]
		if q.PivotPred != nil {
			ok, err := reldb.EvalBool(q.PivotPred, reldb.Row{Schema: m.pivotSchema, Tuple: inst.root.tuple})
			if err != nil {
				return nil, fmt.Errorf("viewobject: %s: pivot selection: %w", m.def.Name, err)
			}
			if !ok {
				continue
			}
		}
		keep, err := inst.matches(q)
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, inst.Clone())
		}
	}
	if op.Active() {
		op.Finish(fmt.Sprintf("object=%s gen=%d instances=%d", m.def.Name, m.gen, len(out)))
	}
	return out, nil
}

// InstantiateByKey serves the single instance with the given object key
// from the materialized cache, or ok=false if absent.
func (m *Materializer) InstantiateByKey(key reldb.Tuple) (*Instance, bool, error) {
	op := obs.Default.StartOp("viewobject.materialize.serve")
	m.mu.Lock()
	defer m.mu.Unlock()
	rtx, err := m.syncLocked(op)
	if err != nil {
		return nil, false, err
	}
	if rtx != nil {
		rtx.Close()
	}
	finish := func(found bool) {
		if op.Active() {
			op.Finish(fmt.Sprintf("object=%s gen=%d key=%s found=%t", m.def.Name, m.gen, key, found))
		}
	}
	ek, err := m.pivotSchema.EncodeKey(key)
	if err != nil {
		finish(false)
		return nil, false, nil // mirror InstantiateByKey: a malformed key finds nothing
	}
	inst, ok := m.insts[ek]
	if !ok {
		finish(false)
		return nil, false, nil
	}
	finish(true)
	return inst.Clone(), true, nil
}

// applyVerdict classifies one patch attempt.
type applyVerdict int

const (
	applyOK applyVerdict = iota
	applyFallback
	applyResync
)

// syncLocked brings the cache up to the current committed generation:
// subscribe (first use), pin a snapshot, drain the stream, and either
// patch the affected instances or rebuild wholesale. It returns the
// snapshot the cache is now synced to (callers close it), or nil when
// the fast path proved the cache already fresh without pinning one.
// When op is active, the serve's outcome shows up as child spans:
// "…materialize.patch" for applied deltas and a "…materialize.{miss,
// fallback,resync}" span wrapping a rebuild (the rebuild's own
// instantiate span nests inside it).
func (m *Materializer) syncLocked(op obs.Op) (*reldb.ReadTx, error) {
	if m.sub == nil {
		// Subscribe before pinning the snapshot: the snapshot generation
		// is then >= StartGen, so every later commit reaches the queue.
		m.sub = m.db.Subscribe(m.buffer)
	} else if m.valid && len(m.pending) == 0 && m.db.Generation() == m.gen {
		// Nothing committed since the last sync: the queue is necessarily
		// empty (every publish advances the generation), so serve without
		// pinning a snapshot. A commit racing this check linearizes after
		// the serve. Callers handle the nil snapshot.
		obs.Default.MatHits.Inc()
		return nil, nil
	}
	rtx := m.db.BeginRead()
	batches, lost := m.sub.Poll()
	m.pending = append(m.pending, batches...)

	var cause *obs.Counter
	var causeName string
	switch {
	case m.insts == nil:
		m.valid, cause, causeName = false, &obs.Default.MatMisses, "miss"
	case lost:
		m.valid, cause, causeName = false, &obs.Default.MatResyncs, "resync"
	}
	if m.valid {
		verdict, err := m.applyLocked(rtx, op)
		if err != nil {
			rtx.Close()
			return nil, err
		}
		switch verdict {
		case applyOK:
			cause = &obs.Default.MatHits
		case applyFallback:
			m.valid, cause, causeName = false, &obs.Default.MatFallbacks, "fallback"
		case applyResync:
			m.valid, cause, causeName = false, &obs.Default.MatResyncs, "resync"
		}
	}
	if !m.valid {
		var rop obs.Op
		if op.Active() {
			rop = op.Child("viewobject.materialize." + causeName)
		}
		if err := m.rebuildLocked(rtx, rop); err != nil {
			rtx.Close()
			return nil, err
		}
		if rop.Active() {
			rop.Finish(fmt.Sprintf("object=%s gen=%d instances=%d", m.def.Name, m.gen, len(m.insts)))
		}
	}
	cause.Inc()
	return rtx, nil
}

// applyLocked patches the cache with every pending batch up to the
// snapshot's generation. It scans the batches first — any condition the
// plan cannot localize returns a fallback/resync verdict before a
// single instance is touched — then traverses reverse paths to find the
// affected pivot keys and rebuilds exactly those instances from the
// snapshot.
func (m *Materializer) applyLocked(rtx *reldb.ReadTx, op obs.Op) (applyVerdict, error) {
	target := rtx.Generation()
	cut := 0
	for cut < len(m.pending) && m.pending[cut].Gen <= target {
		cut++
	}
	batches := m.pending[:cut]
	m.pending = m.pending[cut:]
	if len(batches) == 0 {
		if m.gen != target {
			// No batches yet the snapshot moved: the subscription was
			// pinned past an in-flight commit whose batch it never got.
			return applyResync, nil
		}
		return applyOK, nil // already fresh
	}
	start := time.Now()

	// Scan: membership changes key the pivot directly; other on-path
	// relations contribute changed images for reverse traversal.
	touched := make(map[string]bool)
	var traverse []struct {
		rel string
		img reldb.Tuple
	}
	gen := m.gen
	for _, b := range batches {
		if b.Gen != gen+1 {
			return applyResync, nil // gap: the stream skipped a generation
		}
		gen = b.Gen
		for _, d := range b.Deltas {
			switch {
			case d.Structural:
				if m.defRels[d.Relation] {
					return applyFallback, nil
				}
			case d.Relation == m.pivotRel:
				if m.pivotOnPath {
					return applyFallback, nil
				}
				for _, t := range d.Inserts {
					touched[m.pivotSchema.EncodeKeyOf(t)] = true
				}
				for _, t := range d.Deletes {
					touched[m.pivotSchema.EncodeKeyOf(t)] = true
				}
				for _, rc := range d.Replaces {
					touched[m.pivotSchema.EncodeKeyOf(rc.Old)] = true
					touched[m.pivotSchema.EncodeKeyOf(rc.New)] = true
				}
			default:
				paths := m.revPaths[d.Relation]
				if len(paths) == 0 {
					continue // not part of this object
				}
				for _, t := range d.Inserts {
					traverse = append(traverse, struct {
						rel string
						img reldb.Tuple
					}{d.Relation, t})
				}
				for _, t := range d.Deletes {
					traverse = append(traverse, struct {
						rel string
						img reldb.Tuple
					}{d.Relation, t})
				}
				for _, rc := range d.Replaces {
					traverse = append(traverse, struct {
						rel string
						img reldb.Tuple
					}{d.Relation, rc.Old}, struct {
						rel string
						img reldb.Tuple
					}{d.Relation, rc.New})
				}
			}
		}
	}
	if gen != target {
		// The stream publishes every generation advance while subscribed,
		// so falling short of the snapshot means lost history.
		return applyResync, nil
	}

	// Localize: both the old and new image of every change reach every
	// pivot whose instance content they entered or left — the reversed
	// path from the earliest-changed link runs through steps that did not
	// change in this window, so evaluating at the final state is exact.
	for _, c := range traverse {
		for _, rp := range m.revPaths[c.rel] {
			pivots, err := TraversePath(rtx, c.img, rp)
			if err != nil {
				return applyFallback, err
			}
			for _, p := range pivots {
				touched[m.pivotSchema.EncodeKeyOf(p)] = true
			}
		}
	}

	// Patch: final membership and content both resolve against the
	// snapshot — a touched key present in the pivot relation rebuilds
	// (through the same assembleBatch the fresh path uses), an absent
	// one drops.
	pivotRel, err := rtx.Relation(m.pivotRel)
	if err != nil {
		return applyFallback, err
	}
	eks := make([]string, 0, len(touched))
	for ek := range touched {
		eks = append(eks, ek)
	}
	sort.Strings(eks)
	patches := 0
	var rebuildEKs []string
	var rebuildPts []reldb.Tuple
	for _, ek := range eks {
		pt, ok := pivotRel.GetEncoded(ek)
		if !ok {
			if _, had := m.insts[ek]; had {
				delete(m.insts, ek)
				m.dropKey(ek)
				patches++
			}
			continue
		}
		rebuildEKs = append(rebuildEKs, ek)
		rebuildPts = append(rebuildPts, pt)
	}
	if len(rebuildPts) > 0 {
		insts, err := assembleBatch(rtx, m.def, rebuildPts)
		if err != nil {
			return applyFallback, err
		}
		for i, ek := range rebuildEKs {
			if _, had := m.insts[ek]; !had {
				m.addKey(ek)
			}
			m.insts[ek] = insts[i]
			patches++
		}
	}
	m.gen = target
	if patches > 0 {
		obs.Default.MatPatches.Add(int64(patches))
		obs.Default.MatPatchNs.Observe(time.Since(start).Nanoseconds())
		if op.Active() {
			op.Span("viewobject.materialize.patch",
				fmt.Sprintf("object=%s gen=%d patches=%d", m.def.Name, target, patches),
				start, time.Since(start))
		}
	}
	return applyOK, nil
}

// rebuildLocked re-instantiates the full extent through the existing
// Instantiate path (parallel when the pivot frontier and worker budget
// warrant) and re-keys the cache at the snapshot's generation.
func (m *Materializer) rebuildLocked(rtx *reldb.ReadTx, op obs.Op) error {
	insts, err := InstantiateOp(rtx, m.def, Query{}, op)
	if err != nil {
		return err
	}
	m.insts = make(map[string]*Instance, len(insts))
	m.keys = m.keys[:0]
	for _, inst := range insts {
		ek := m.pivotSchema.EncodeKeyOf(inst.root.tuple)
		m.insts[ek] = inst
		m.keys = append(m.keys, ek)
	}
	sort.Strings(m.keys)
	m.gen = rtx.Generation()
	cut := 0
	for cut < len(m.pending) && m.pending[cut].Gen <= m.gen {
		cut++
	}
	m.pending = m.pending[cut:]
	m.valid = true
	return nil
}

// addKey inserts ek into the sorted key slice.
func (m *Materializer) addKey(ek string) {
	i := sort.SearchStrings(m.keys, ek)
	m.keys = append(m.keys, "")
	copy(m.keys[i+1:], m.keys[i:])
	m.keys[i] = ek
}

// dropKey removes ek from the sorted key slice.
func (m *Materializer) dropKey(ek string) {
	i := sort.SearchStrings(m.keys, ek)
	if i < len(m.keys) && m.keys[i] == ek {
		m.keys = append(m.keys[:i], m.keys[i+1:]...)
	}
}

// materializers interns one Materializer per (database, definition)
// pair for the package-level MaterializedInstantiate entry point.
var materializers sync.Map // matKey -> *Materializer

type matKey struct {
	db  *reldb.Database
	def *Definition
}

// MaterializerFor returns the shared materializer for def's instances
// over db, creating it on first use.
func MaterializerFor(db *reldb.Database, def *Definition) *Materializer {
	k := matKey{db: db, def: def}
	if v, ok := materializers.Load(k); ok {
		return v.(*Materializer)
	}
	v, _ := materializers.LoadOrStore(k, NewMaterializer(db, def))
	return v.(*Materializer)
}

// MaterializedInstantiate is Instantiate through the shared materialized
// cache: it serves patched instances when the cache is fresh and falls
// back to the regular instantiation path on miss or invalidation. The
// result is byte-identical to Instantiate over a snapshot at the same
// generation.
func MaterializedInstantiate(db *reldb.Database, def *Definition, q Query) ([]*Instance, error) {
	return MaterializerFor(db, def).Instantiate(q)
}
