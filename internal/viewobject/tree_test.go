package viewobject_test

import (
	"strings"
	"testing"

	"penguin/internal/structural"
	"penguin/internal/university"
	. "penguin/internal/viewobject"
)

func courseTree(t *testing.T) (*structural.Graph, *Tree) {
	t.Helper()
	_, g := university.New()
	sub, err := ExtractSubgraph(g, university.Courses, DefaultMetric())
	if err != nil {
		t.Fatal(err)
	}
	return g, BuildTree(sub)
}

// Figure 2(b): the expanded tree contains exactly two copies of PEOPLE,
// one per path from COURSES.
func TestBuildTreeTwoPeopleCopies(t *testing.T) {
	_, tree := courseTree(t)
	occ := tree.Occurrences(university.People)
	if len(occ) != 2 {
		t.Fatalf("PEOPLE occurrences = %v, want exactly 2 (Figure 2b)", occ)
	}
	// The plain "PEOPLE" is the shallower copy (under DEPARTMENT);
	// "PEOPLE#2" sits under GRADES-STUDENT.
	p1, ok := tree.Node("PEOPLE")
	if !ok {
		t.Fatal("PEOPLE node missing")
	}
	if p1.Parent().Relation != university.Department {
		t.Fatalf("PEOPLE parent = %s, want DEPARTMENT", p1.Parent().Relation)
	}
	p2, ok := tree.Node("PEOPLE#2")
	if !ok {
		t.Fatal("PEOPLE#2 node missing")
	}
	if p2.Parent().Relation != university.Student {
		t.Fatalf("PEOPLE#2 parent = %s, want STUDENT", p2.Parent().Relation)
	}
}

// The pivot occurs exactly once: expansion never revisits a relation on
// the current path, and every path starts at the pivot.
func TestBuildTreePivotUnique(t *testing.T) {
	_, tree := courseTree(t)
	if occ := tree.Occurrences(university.Courses); len(occ) != 1 {
		t.Fatalf("COURSES occurrences = %v, want 1", occ)
	}
	if tree.Root.Relation != university.Courses || tree.Root.ID != university.Courses {
		t.Fatalf("root = %s/%s", tree.Root.ID, tree.Root.Relation)
	}
	if tree.Root.Parent() != nil {
		t.Fatal("root has a parent")
	}
}

// No root-to-leaf path repeats a relation (circuits are broken).
func TestBuildTreeNoRelationRepeatsOnPath(t *testing.T) {
	_, tree := courseTree(t)
	var walk func(n *TreeNode, onPath map[string]bool)
	walk = func(n *TreeNode, onPath map[string]bool) {
		if onPath[n.Relation] {
			t.Fatalf("relation %s repeats on a root path (node %s)", n.Relation, n.ID)
		}
		onPath[n.Relation] = true
		for _, c := range n.Children {
			walk(c, onPath)
		}
		delete(onPath, n.Relation)
	}
	walk(tree.Root, map[string]bool{})
}

// Relevance decreases monotonically along every path and never falls
// below the threshold.
func TestBuildTreeRelevanceMonotone(t *testing.T) {
	_, tree := courseTree(t)
	m := DefaultMetric()
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if n.Relevance < m.Threshold {
			t.Fatalf("node %s has relevance %v below threshold", n.ID, n.Relevance)
		}
		for _, c := range n.Children {
			if c.Relevance > n.Relevance {
				t.Fatalf("child %s more relevant than parent %s", c.ID, n.ID)
			}
			walk(c)
		}
	}
	walk(tree.Root)
}

// The shallowest occurrence of every relation carries the plain name.
func TestTreeIDAssignment(t *testing.T) {
	_, tree := courseTree(t)
	// STUDENT (plain) must be the copy under GRADES (depth 2), not the
	// one under DEPARTMENT-PEOPLE (depth 3).
	s, ok := tree.Node(university.Student)
	if !ok {
		t.Fatal("STUDENT missing")
	}
	if s.Parent().Relation != university.Grades {
		t.Fatalf("STUDENT parent = %s, want GRADES", s.Parent().Relation)
	}
	// CURRICULUM (plain) must be the direct inverse-reference child of
	// COURSES (depth 1) — the referencing-peninsula occurrence.
	c, ok := tree.Node(university.Curriculum)
	if !ok {
		t.Fatal("CURRICULUM missing")
	}
	if c.Parent().Relation != university.Courses {
		t.Fatalf("CURRICULUM parent = %s, want COURSES", c.Parent().Relation)
	}
	if c.Edge.Forward || c.Edge.Conn.Name != university.ConnCurriculumCourse {
		t.Fatalf("CURRICULUM edge = %v, want inverse curriculum-course", c.Edge)
	}
	// Every ID resolves back to its node.
	for _, id := range tree.NodeIDs() {
		n, ok := tree.Node(id)
		if !ok || n.ID != id {
			t.Fatalf("ID %s does not round-trip", id)
		}
	}
	if tree.Size() != len(tree.NodeIDs()) {
		t.Fatal("Size disagrees with NodeIDs")
	}
}

func TestTreePathFromRoot(t *testing.T) {
	_, tree := courseTree(t)
	p2, _ := tree.Node("PEOPLE#2")
	path := p2.PathFromRoot()
	// COURSES --* GRADES inv(--*) STUDENT inv(--)) PEOPLE.
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3", len(path))
	}
	if path[0].Conn.Name != university.ConnCourseGrades || !path[0].Forward {
		t.Fatalf("step 0 = %v", path[0])
	}
	if path[1].Conn.Name != university.ConnStudentGrades || path[1].Forward {
		t.Fatalf("step 1 = %v", path[1])
	}
	if path[2].Conn.Name != university.ConnPersonStudent || path[2].Forward {
		t.Fatalf("step 2 = %v", path[2])
	}
	if tree.Root.PathFromRoot() != nil {
		t.Fatal("root path should be nil")
	}
}

func TestTreeRender(t *testing.T) {
	_, tree := courseTree(t)
	out := tree.Render()
	for _, want := range []string{
		"expanded tree for pivot COURSES",
		"--> DEPARTMENT",
		"--* GRADES",
		"inv(--*) STUDENT",
		"inv(--)) PEOPLE#2",
		"inv(-->) CURRICULUM",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

// Figure 2(c): pruning to ω.
func TestConfigureOmega(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	if om.Complexity() != 5 {
		t.Fatalf("ω complexity = %d, want 5", om.Complexity())
	}
	if om.Pivot() != university.Courses {
		t.Fatalf("ω pivot = %s", om.Pivot())
	}
	if got := strings.Join(om.Key(), ","); got != "CourseID" {
		t.Fatalf("ω key = %s", got)
	}
	// Direct children of the pivot: DEPARTMENT, GRADES, CURRICULUM.
	var childIDs []string
	for _, c := range om.Root().Children {
		childIDs = append(childIDs, c.ID)
	}
	if strings.Join(childIDs, ",") != "DEPARTMENT,GRADES,CURRICULUM" {
		t.Fatalf("ω children = %v", childIDs)
	}
	// STUDENT hangs under GRADES via a single inverse-ownership edge.
	st, ok := om.Node(university.Student)
	if !ok {
		t.Fatal("ω misses STUDENT")
	}
	if st.Parent().ID != university.Grades {
		t.Fatalf("STUDENT parent = %s", st.Parent().ID)
	}
	if len(st.Path) != 1 || st.Path[0].Forward {
		t.Fatalf("STUDENT path = %v", st.Path)
	}
}

// Figure 3: ω′ attaches STUDENT through a two-connection path (GRADES
// excluded) and FACULTY through a three-connection path.
func TestConfigureOmegaPrime(t *testing.T) {
	_, g := university.New()
	op := university.MustOmegaPrime(g)
	if op.Complexity() != 3 {
		t.Fatalf("ω′ complexity = %d, want 3", op.Complexity())
	}
	st, ok := op.Node(university.Student)
	if !ok {
		t.Fatal("ω′ misses STUDENT")
	}
	if len(st.Path) != 2 {
		t.Fatalf("ω′ STUDENT path length = %d, want 2 (via GRADES)", len(st.Path))
	}
	if st.Path[0].Conn.Name != university.ConnCourseGrades ||
		st.Path[1].Conn.Name != university.ConnStudentGrades {
		t.Fatalf("ω′ STUDENT path = %v", st.Path)
	}
	fa, ok := op.Node(university.Faculty)
	if !ok {
		t.Fatal("ω′ misses FACULTY")
	}
	if len(fa.Path) != 3 {
		t.Fatalf("ω′ FACULTY path length = %d, want 3 (via DEPARTMENT, PEOPLE)", len(fa.Path))
	}
}

func TestConfigureErrors(t *testing.T) {
	_, tree := courseTree(t)
	if _, err := tree.Configure("bad", map[string][]string{"NOPE": nil}); err == nil {
		t.Fatal("unknown occurrence accepted")
	}
	if _, err := tree.Configure("bad", map[string][]string{
		university.Grades: {"NoSuchAttr"},
	}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestConfigureRootOnly(t *testing.T) {
	_, tree := courseTree(t)
	d, err := tree.Configure("just-courses", map[string][]string{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Complexity() != 1 {
		t.Fatalf("complexity = %d", d.Complexity())
	}
	// Default projection keeps every attribute.
	if len(d.Root().Attrs) != 5 {
		t.Fatalf("root attrs = %v", d.Root().Attrs)
	}
}

func TestDefineOneCall(t *testing.T) {
	_, g := university.New()
	d, err := Define(g, "quick", university.Courses, DefaultMetric(), map[string][]string{
		university.Grades: nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Complexity() != 2 {
		t.Fatalf("complexity = %d", d.Complexity())
	}
	if _, err := Define(g, "quick", "NOPE", DefaultMetric(), nil); err == nil {
		t.Fatal("Define with bad pivot accepted")
	}
}
