package viewobject_test

import (
	"encoding/json"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/university"
	. "penguin/internal/viewobject"
)

func TestInstanceToMapAndJSON(t *testing.T) {
	db, om := seededOmega(t)
	inst, ok, err := InstantiateByKey(db, om, cs345Key())
	if err != nil || !ok {
		t.Fatal(err)
	}
	m := inst.ToMap()
	if m["CourseID"] != "CS345" || m["Units"] != int64(4) {
		t.Fatalf("map = %v", m)
	}
	grades, ok := m[university.Grades].([]any)
	if !ok || len(grades) != 3 {
		t.Fatalf("grades = %v", m[university.Grades])
	}
	g0 := grades[0].(map[string]any)
	students, ok := g0[university.Student].([]any)
	if !ok || len(students) != 1 {
		t.Fatalf("nested students = %v", g0[university.Student])
	}

	data, err := json.Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed["Title"] != "Database Systems" {
		t.Fatalf("JSON title = %v", parsed["Title"])
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	db, om := seededOmega(t)
	inst, ok, err := InstantiateByKey(db, om, cs345Key())
	if err != nil || !ok {
		t.Fatal(err)
	}
	data, err := json.Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalInstance(om, data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Render() != inst.Render() {
		t.Fatalf("round trip differs:\n%s\nvs\n%s", back.Render(), inst.Render())
	}
}

func TestInstanceFromMapNulls(t *testing.T) {
	_, om := seededOmega(t)
	inst, err := InstanceFromMap(om, map[string]any{
		"CourseID": "CS900",
		"Units":    3, // int accepted
		"GRADES": []any{
			map[string]any{"CourseID": "CS900", "PID": float64(1)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := inst.Root().Get(om, "Title"); !v.IsNull() {
		t.Fatalf("absent attr = %v, want null", v)
	}
	if inst.Count(university.Grades) != 1 {
		t.Fatal("nested grade missing")
	}
}

func TestInstanceFromMapErrors(t *testing.T) {
	_, om := seededOmega(t)
	cases := []map[string]any{
		{"CourseID": "X", "Nope": 1},                                         // unknown field
		{"CourseID": "X", "Units": 3.5},                                      // non-integral int
		{"CourseID": "X", "Units": "three"},                                  // wrong type
		{"CourseID": "X", "GRADES": "not-a-list"},                            // bad child shape
		{"CourseID": "X", "GRADES": []any{"not-an-object"}},                  // bad element
		{"CourseID": "X", "GRADES": []any{map[string]any{"Ghost": 1}}},       // unknown nested field
		{"CourseID": nil},                                                    // null key fails validation
		{"CourseID": "X", "GRADES": []any{map[string]any{"CourseID": true}}}, // bool into string
	}
	for i, doc := range cases {
		if _, err := InstanceFromMap(om, doc); err == nil {
			t.Errorf("case %d accepted: %v", i, doc)
		}
	}
	if _, err := UnmarshalInstance(om, []byte("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
}

func TestJSONDocumentDrivesUpdate(t *testing.T) {
	// The O/R path an application would take: receive a JSON document,
	// turn it into an instance, insert it through the translator.
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	doc := []byte(`{
		"CourseID": "CS901", "Title": "JSON Course", "DeptName": "Computer Science",
		"Units": 3, "Level": "graduate",
		"GRADES": [
			{"CourseID": "CS901", "PID": 1, "Quarter": "Aut91", "Grade": "A",
			 "STUDENT": [{"PID": 1, "Degree": "PhD", "Year": 3}]}
		],
		"DEPARTMENT": [], "CURRICULUM": []
	}`)
	inst, err := UnmarshalInstance(om, doc)
	if err != nil {
		t.Fatal(err)
	}
	// Note: the vupdate package is not imported here to keep the test
	// focused; inserting through RQL-free direct relational state checks.
	if !inst.Key().Equal(reldb.Tuple{reldb.String("CS901")}) {
		t.Fatalf("key = %v", inst.Key())
	}
	if inst.Count(university.Student) != 1 {
		t.Fatal("nested student missing")
	}
	_ = db
}
