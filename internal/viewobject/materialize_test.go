package viewobject_test

import (
	"testing"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/university"
	. "penguin/internal/viewobject"
)

// matCounters reads the materializer counter family.
type matCounters struct {
	hits, misses, patches, fallbacks, resyncs int64
}

func captureMat() matCounters {
	s := obs.Capture()
	return matCounters{
		hits:      s.Counter("viewobject.materialize.hits"),
		misses:    s.Counter("viewobject.materialize.misses"),
		patches:   s.Counter("viewobject.materialize.patches"),
		fallbacks: s.Counter("viewobject.materialize.falls_back"),
		resyncs:   s.Counter("viewobject.materialize.resyncs"),
	}
}

// mustMatchFresh asserts the materialized serve is byte-identical —
// contents and order — to a fresh instantiation of the same query over
// the current committed state.
func mustMatchFresh(t *testing.T, db *reldb.Database, def *Definition, m *Materializer, q Query) {
	t.Helper()
	got, err := m.Instantiate(q)
	if err != nil {
		t.Fatalf("materialized instantiate: %v", err)
	}
	rtx := db.BeginRead()
	want, err := Instantiate(rtx, def, q)
	rtx.Close()
	if err != nil {
		t.Fatalf("fresh instantiate: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("materialized %d instances, fresh %d", len(got), len(want))
	}
	for i := range got {
		if g, w := got[i].Render(), want[i].Render(); g != w {
			t.Fatalf("instance %d diverged\nmaterialized:\n%s\nfresh:\n%s", i, g, w)
		}
	}
}

func TestMaterializerPatchesMatchFresh(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	m := NewMaterializer(db, om)
	defer m.Close()
	s := reldb.String
	i := reldb.Int

	c0 := captureMat()
	mustMatchFresh(t, db, om, m, Query{}) // cold: miss
	mustMatchFresh(t, db, om, m, Query{}) // unchanged: hit, nothing to patch
	c1 := captureMat()
	if c1.misses-c0.misses != 1 || c1.hits-c0.hits != 1 {
		t.Fatalf("cold+warm serves: misses +%d hits +%d, want +1/+1", c1.misses-c0.misses, c1.hits-c0.hits)
	}
	if c1.patches != c0.patches {
		t.Fatalf("no data changed but %d patches applied", c1.patches-c0.patches)
	}
	if m.Generation() != db.Generation() {
		t.Fatalf("cache at gen %d, head %d", m.Generation(), db.Generation())
	}

	// Pivot membership: a new course adds an instance; deleting one drops
	// it; a same-key pivot replace rebuilds it in place.
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		return tx.Insert(university.Courses, reldb.Tuple{s("CS999"), s("Seminar"), s("Computer Science"), i(1), s("graduate")})
	}); err != nil {
		t.Fatal(err)
	}
	mustMatchFresh(t, db, om, m, Query{})
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		_, err := tx.Replace(university.Courses, reldb.Tuple{s("CS999")},
			reldb.Tuple{s("CS999"), s("Research Seminar"), s("Computer Science"), i(2), s("graduate")})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	mustMatchFresh(t, db, om, m, Query{})
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		_, err := tx.Delete(university.Courses, reldb.Tuple{s("CS999")})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	mustMatchFresh(t, db, om, m, Query{})

	// Non-pivot deltas localize through reverse paths: a new grade patches
	// the CS101 instance (and, through the two-connection STUDENT path,
	// whatever instances the student reaches).
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		return tx.Insert(university.Grades, reldb.Tuple{s("CS101"), i(6), s("Win91"), s("C")})
	}); err != nil {
		t.Fatal(err)
	}
	mustMatchFresh(t, db, om, m, Query{})
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		_, err := tx.Replace(university.Grades, reldb.Tuple{s("CS101"), i(6)},
			reldb.Tuple{s("CS101"), i(6), s("Win91"), s("B")})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	mustMatchFresh(t, db, om, m, Query{})
	// A key-changing replace (delete+insert in the delta) moves the grade
	// to another course: both instances patch.
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		_, err := tx.Replace(university.Grades, reldb.Tuple{s("CS101"), i(6)},
			reldb.Tuple{s("CS345"), i(6), s("Win91"), s("B")})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	mustMatchFresh(t, db, om, m, Query{})
	// A mid-path relation (STUDENT sits behind GRADES): patching must find
	// every course the student is graded in.
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		_, err := tx.Replace(university.Student, reldb.Tuple{i(1)},
			reldb.Tuple{i(1), s("PhD"), i(4)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	mustMatchFresh(t, db, om, m, Query{})

	c2 := captureMat()
	if c2.patches == c1.patches {
		t.Fatal("data changed across serves but no patches were counted")
	}
	if c2.fallbacks != c1.fallbacks || c2.resyncs != c1.resyncs {
		t.Fatalf("localizable deltas triggered fallbacks (+%d) or resyncs (+%d)",
			c2.fallbacks-c1.fallbacks, c2.resyncs-c1.resyncs)
	}
	ps := obs.Capture().Histogram("viewobject.materialize.patch_ns")
	if ps.Count == 0 {
		t.Fatal("patch latency histogram recorded nothing")
	}
}

func TestMaterializerQueriesMatchFresh(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	m := NewMaterializer(db, om)
	defer m.Close()

	queries := []Query{
		{PivotPred: reldb.Eq("Level", reldb.String("graduate"))},
		{
			PivotPred:  reldb.Eq("Level", reldb.String("graduate")),
			CountConds: []CountCond{{NodeID: university.Student, Op: reldb.OpLt, N: 5}},
		},
		{NodePreds: []NodePred{{NodeID: university.Student, Pred: reldb.Eq("Degree", reldb.String("PhD"))}}},
	}
	for _, q := range queries {
		mustMatchFresh(t, db, om, m, q)
	}
	// Patch, then re-run every query shape against the patched cache.
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		_, err := tx.Delete(university.Grades, reldb.Tuple{reldb.String("EE380"), reldb.Int(3)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		mustMatchFresh(t, db, om, m, q)
	}
}

func TestMaterializerInstantiateByKey(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	m := NewMaterializer(db, om)
	defer m.Close()

	check := func(course string, wantOK bool) {
		t.Helper()
		key := reldb.Tuple{reldb.String(course)}
		got, ok, err := m.InstantiateByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		rtx := db.BeginRead()
		want, wok, werr := InstantiateByKey(rtx, om, key)
		rtx.Close()
		if werr != nil {
			t.Fatal(werr)
		}
		if ok != wok || ok != wantOK {
			t.Fatalf("%s: materialized ok=%v fresh ok=%v want %v", course, ok, wok, wantOK)
		}
		if ok && got.Render() != want.Render() {
			t.Fatalf("%s diverged\nmaterialized:\n%s\nfresh:\n%s", course, got.Render(), want.Render())
		}
	}
	check("CS345", true)
	check("NOPE", false)
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		_, err := tx.Delete(university.Courses, reldb.Tuple{reldb.String("CS345")})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	check("CS345", false)
}

func TestMaterializerDDL(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	m := NewMaterializer(db, om)
	defer m.Close()

	mustMatchFresh(t, db, om, m, Query{})
	c0 := captureMat()

	// DDL on a relation outside the definition is invisible: the next
	// serve is still a plain hit.
	aux := reldb.MustSchema("AUX", []reldb.Attribute{{Name: "ID", Type: reldb.KindInt}}, []string{"ID"})
	if _, err := db.CreateRelation(aux); err != nil {
		t.Fatal(err)
	}
	if err := db.DropRelation("AUX"); err != nil {
		t.Fatal(err)
	}
	mustMatchFresh(t, db, om, m, Query{})
	c1 := captureMat()
	if c1.hits-c0.hits != 1 || c1.fallbacks != c0.fallbacks {
		t.Fatalf("unrelated DDL: hits +%d fallbacks +%d, want +1/+0", c1.hits-c0.hits, c1.fallbacks-c0.fallbacks)
	}

	// Structural DDL on a definition relation cannot be localized: the
	// serve falls back to full re-instantiation (and still matches).
	sch := db.MustRelation(university.Curriculum).Schema()
	rows := db.MustRelation(university.Curriculum).All()
	if err := db.DropRelation(university.Curriculum); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation(sch); err != nil {
		t.Fatal(err)
	}
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		for _, r := range rows {
			if err := tx.Insert(university.Curriculum, r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	mustMatchFresh(t, db, om, m, Query{})
	c2 := captureMat()
	if c2.fallbacks-c1.fallbacks != 1 {
		t.Fatalf("structural DDL on a definition relation: fallbacks +%d, want +1", c2.fallbacks-c1.fallbacks)
	}
}

func TestMaterializerOverflowResyncs(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	m := NewMaterializer(db, om)
	defer m.Close()
	m.SetDeltaBuffer(2)

	mustMatchFresh(t, db, om, m, Query{})
	c0 := captureMat()
	// Five commits against a two-slot queue: the subscription drops its
	// history and the next serve must rebuild, not patch a torn suffix.
	for n := 0; n < 5; n++ {
		if err := db.RunInTx(func(tx *reldb.Tx) error {
			return tx.Insert(university.Grades, reldb.Tuple{reldb.String("EE201"), reldb.Int(int64(4 + n)), reldb.String("Spr91"), reldb.String("B")})
		}); err != nil {
			t.Fatal(err)
		}
	}
	mustMatchFresh(t, db, om, m, Query{})
	c1 := captureMat()
	if c1.resyncs-c0.resyncs != 1 {
		t.Fatalf("overflow: resyncs +%d, want +1", c1.resyncs-c0.resyncs)
	}
	if m.Generation() != db.Generation() {
		t.Fatalf("resynced cache at gen %d, head %d", m.Generation(), db.Generation())
	}
}

func TestMaterializedInstantiateShared(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	defer MaterializerFor(db, om).Close()

	a, err := MaterializedInstantiate(db, om, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no instances")
	}
	if MaterializerFor(db, om) != MaterializerFor(db, om) {
		t.Fatal("MaterializerFor does not intern per (db, def)")
	}
	// Served instances are clones: mutating the caller's copy must not
	// leak into later serves.
	if err := a[0].Root().SetAttr(om, "Title", reldb.String("CLOBBERED")); err != nil {
		t.Fatal(err)
	}
	b, err := MaterializedInstantiate(db, om, Query{})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range b {
		if v, ok := inst.Root().Get(om, "Title"); ok {
			if sv, _ := v.AsString(); sv == "CLOBBERED" {
				t.Fatal("mutation through a served clone leaked into the cache")
			}
		}
	}
}
