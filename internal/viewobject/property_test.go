package viewobject_test

import (
	"math/rand"
	"strings"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/university"
	. "penguin/internal/viewobject"
)

// Property: every subset of tree occurrences (root always kept) is a
// valid configuration — "once the pivot relation has been determined, we
// have the choice to either include in or exclude from ω every other
// relation in the tree" (§3). Random subsets must configure cleanly, with
// complexity = |subset| + 1 and well-formed paths.
func TestConfigureRandomSubsets(t *testing.T) {
	_, g := university.New()
	sub, err := ExtractSubgraph(g, university.Courses, DefaultMetric())
	if err != nil {
		t.Fatal(err)
	}
	tree := BuildTree(sub)
	ids := tree.NodeIDs()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		include := map[string][]string{}
		for _, id := range ids {
			if id == tree.Root.ID {
				continue
			}
			if rng.Intn(2) == 0 {
				include[id] = nil
			}
		}
		def, err := tree.Configure("random", include)
		if err != nil {
			t.Fatalf("trial %d: configure %v: %v", trial, include, err)
		}
		if def.Complexity() != len(include)+1 {
			t.Fatalf("trial %d: complexity %d, want %d", trial, def.Complexity(), len(include)+1)
		}
		// Every non-root node has a nonempty, connected path and exists
		// in the tree it came from.
		for _, n := range def.Nodes() {
			if n == def.Root() {
				continue
			}
			if len(n.Path) == 0 {
				t.Fatalf("trial %d: node %s has no path", trial, n.ID)
			}
			cur := n.Parent().Relation
			for _, e := range n.Path {
				if e.Source() != cur {
					t.Fatalf("trial %d: path of %s broken at %s", trial, n.ID, e)
				}
				cur = e.Target()
			}
			if cur != n.Relation {
				t.Fatalf("trial %d: path of %s ends at %s", trial, n.ID, cur)
			}
		}
	}
}

// Property: instantiating any random configuration over the seeded
// database never fails and yields components actually connected to their
// parents (single-edge paths checked on values).
func TestInstantiateRandomConfigurations(t *testing.T) {
	db, g := university.MustNewSeeded()
	sub, err := ExtractSubgraph(g, university.Courses, DefaultMetric())
	if err != nil {
		t.Fatal(err)
	}
	tree := BuildTree(sub)
	ids := tree.NodeIDs()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		include := map[string][]string{}
		for _, id := range ids {
			if id != tree.Root.ID && rng.Intn(2) == 0 {
				include[id] = nil
			}
		}
		def, err := tree.Configure("random", include)
		if err != nil {
			t.Fatal(err)
		}
		insts, err := Instantiate(db, def, Query{})
		if err != nil {
			t.Fatalf("trial %d: instantiate: %v", trial, err)
		}
		if len(insts) != 6 {
			t.Fatalf("trial %d: %d instances, want 6", trial, len(insts))
		}
		for _, inst := range insts {
			checkConnected(t, def, inst.Root())
		}
	}
}

func checkConnected(t *testing.T, def *Definition, in *InstNode) {
	t.Helper()
	node := in.Node()
	parentTuple := in.Tuple()
	parentSchema := def.NodeSchema(node)
	for _, child := range node.Children {
		for _, ci := range in.Children(child.ID) {
			if len(child.Path) == 1 {
				e := child.Path[0]
				srcIdx, err := parentSchema.Indices(e.SourceAttrs())
				if err != nil {
					t.Fatal(err)
				}
				childSchema := def.NodeSchema(child)
				tgtIdx, err := childSchema.Indices(e.TargetAttrs())
				if err != nil {
					t.Fatal(err)
				}
				ct := ci.Tuple()
				for k := range srcIdx {
					if !parentTuple[srcIdx[k]].Equal(ct[tgtIdx[k]]) {
						t.Fatalf("component %s not connected to parent %s: %v vs %v",
							child.ID, node.ID, parentTuple, ct)
					}
				}
			}
			checkConnected(t, def, ci)
		}
	}
}

// Property: the object key uniquely identifies instances — instantiating
// all and indexing by key never collides, and InstantiateByKey returns
// the same instance rendering.
func TestObjectKeyUniqueness(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	insts, err := Instantiate(db, om, Query{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, inst := range insts {
		k := inst.Key().Encode()
		if seen[k] {
			t.Fatalf("duplicate object key %v", inst.Key())
		}
		seen[k] = true
		again, ok, err := InstantiateByKey(db, om, inst.Key())
		if err != nil || !ok {
			t.Fatal(err)
		}
		if again.Render() != inst.Render() {
			t.Fatalf("by-key instance differs for %v", inst.Key())
		}
	}
}

// Property: renders are deterministic and projection-faithful — a
// narrowed projection never leaks non-projected attributes.
func TestProjectionNeverLeaks(t *testing.T) {
	db, g := university.MustNewSeeded()
	def, err := Define(g, "narrow", university.Courses, DefaultMetric(), map[string][]string{
		university.Courses: {"CourseID"},
		university.Grades:  {"CourseID", "PID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, ok, err := InstantiateByKey(db, def, reldb.Tuple{reldb.String("CS345")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	r := inst.Render()
	for _, leaked := range []string{"Database Systems", "Win91", "A-"} {
		if strings.Contains(r, leaked) {
			t.Fatalf("projection leaked %q:\n%s", leaked, r)
		}
	}
}
