package viewobject_test

import (
	"strings"
	"testing"

	"penguin/internal/structural"
	"penguin/internal/university"
	. "penguin/internal/viewobject"
)

func TestDefaultMetricWeights(t *testing.T) {
	m := DefaultMetric()
	if m.Threshold <= 0 || m.Threshold >= 1 {
		t.Fatalf("threshold = %v", m.Threshold)
	}
	for kind, w := range m.Weights {
		if w <= 0 || w > 1 {
			t.Errorf("weight %s = %v out of (0,1]", kind, w)
		}
	}
	// Inverse reference must decay fastest: referencing entities are the
	// least relevant to an abstraction's object.
	invRef := m.Weights[StepKind{structural.Reference, false}]
	for kind, w := range m.Weights {
		if kind == (StepKind{structural.Reference, false}) {
			continue
		}
		if w < invRef {
			t.Errorf("weight %s = %v below inverse-reference %v", kind, w, invRef)
		}
	}
}

func TestMetricWeightUnknownEdge(t *testing.T) {
	m := Metric{Weights: map[StepKind]float64{}}
	_, g := university.New()
	conn, _ := g.Connection(university.ConnCourseGrades)
	if w := m.Weight(structural.Edge{Conn: conn, Forward: true}); w != 0 {
		t.Fatalf("unknown step weight = %v, want 0", w)
	}
}

func TestStepKindString(t *testing.T) {
	k := StepKind{structural.Ownership, true}
	if k.String() != "ownership/forward" {
		t.Fatalf("String = %q", k.String())
	}
	k = StepKind{structural.Reference, false}
	if k.String() != "reference/inverse" {
		t.Fatalf("String = %q", k.String())
	}
}

// Figure 2(a): the relevance computation over the university schema.
func TestRelevanceUniversity(t *testing.T) {
	_, g := university.New()
	m := DefaultMetric()
	rel := m.Relevance(g, university.Courses)
	want := map[string]float64{
		university.Courses:    1.0,
		university.Department: 0.8,   // one reference hop
		university.Grades:     0.9,   // one ownership hop
		university.Curriculum: 0.72,  // DEPARTMENT --* CURRICULUM beats inv-ref 0.5
		university.Student:    0.72,  // via GRADES inverse ownership
		university.People:     0.576, // via GRADES-STUDENT (beats DEPARTMENT path 0.4)
	}
	for relName, w := range want {
		got := rel[relName]
		if got < w-1e-9 || got > w+1e-9 {
			t.Errorf("relevance[%s] = %v, want %v", relName, got, w)
		}
	}
	// FACULTY and STAFF reachable above threshold.
	if rel[university.Faculty] < m.Threshold || rel[university.Staff] < m.Threshold {
		t.Errorf("FACULTY/STAFF relevance below threshold: %v / %v",
			rel[university.Faculty], rel[university.Staff])
	}
}

func TestExtractSubgraphFigure2a(t *testing.T) {
	_, g := university.New()
	sub, err := ExtractSubgraph(g, university.Courses, DefaultMetric())
	if err != nil {
		t.Fatal(err)
	}
	// All eight relations are relevant in Figure 2(a).
	if got := len(sub.Relations()); got != 8 {
		t.Fatalf("relevant relations = %d (%v), want 8", got, sub.Relations())
	}
	// All nine connections survive (both endpoints relevant).
	if got := len(sub.Conns); got != 9 {
		t.Fatalf("connections = %d, want 9", got)
	}
	if !sub.Contains(university.Courses) || sub.Contains("NOPE") {
		t.Fatal("Contains wrong")
	}
	if sub.Pivot != university.Courses {
		t.Fatalf("pivot = %s", sub.Pivot)
	}
}

func TestExtractSubgraphThresholdCuts(t *testing.T) {
	_, g := university.New()
	m := DefaultMetric()
	m.Threshold = 0.75 // keep only one-hop-strong neighbours
	sub, err := ExtractSubgraph(g, university.Courses, m)
	if err != nil {
		t.Fatal(err)
	}
	rels := sub.Relations()
	want := "COURSES,DEPARTMENT,GRADES"
	if strings.Join(rels, ",") != want {
		t.Fatalf("relations = %v, want %s", rels, want)
	}
	// Connections with an endpoint outside the subgraph are dropped.
	for _, c := range sub.Conns {
		if !sub.Contains(c.From) || !sub.Contains(c.To) {
			t.Fatalf("connection %s has endpoint outside subgraph", c)
		}
	}
}

func TestExtractSubgraphUnknownPivot(t *testing.T) {
	_, g := university.New()
	if _, err := ExtractSubgraph(g, "NOPE", DefaultMetric()); err == nil {
		t.Fatal("unknown pivot accepted")
	}
}

func TestSubgraphEdges(t *testing.T) {
	_, g := university.New()
	sub, err := ExtractSubgraph(g, university.Courses, DefaultMetric())
	if err != nil {
		t.Fatal(err)
	}
	edges := sub.Edges(university.Courses)
	// COURSES: forward course-dept + course-grades, inverse curriculum-course.
	if len(edges) != 3 {
		t.Fatalf("edges from COURSES = %d, want 3", len(edges))
	}
	fwd := 0
	for _, e := range edges {
		if e.Source() != university.Courses {
			t.Fatalf("edge %s does not leave COURSES", e)
		}
		if e.Forward {
			fwd++
		}
	}
	if fwd != 2 {
		t.Fatalf("forward edges = %d, want 2", fwd)
	}
}

func TestSubgraphRender(t *testing.T) {
	_, g := university.New()
	sub, err := ExtractSubgraph(g, university.Courses, DefaultMetric())
	if err != nil {
		t.Fatal(err)
	}
	out := sub.Render()
	for _, want := range []string{
		"relevant subgraph for pivot COURSES",
		"COURSES      relevance 1.000",
		"GRADES       relevance 0.900",
		"PEOPLE       relevance 0.576",
		"COURSES(CourseID) --* GRADES(CourseID)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

// Pivoting on a different relation gives a different subgraph — the model's
// multiple-perspective property.
func TestSubgraphDependsOnPivot(t *testing.T) {
	_, g := university.New()
	m := DefaultMetric()
	m.Threshold = 0.5
	subCourses, err := ExtractSubgraph(g, university.Courses, m)
	if err != nil {
		t.Fatal(err)
	}
	subPeople, err := ExtractSubgraph(g, university.People, m)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(subCourses.Relations(), ",") == strings.Join(subPeople.Relations(), ",") {
		t.Fatal("different pivots should give different subgraphs at threshold 0.5")
	}
	if !subPeople.Contains(university.Student) || !subPeople.Contains(university.Faculty) {
		t.Fatalf("PEOPLE subgraph missing subsets: %v", subPeople.Relations())
	}
}
