package viewobject

import (
	"encoding/json"
	"fmt"

	"penguin/internal/reldb"
)

// JSON export. A view-object instance is a natural nested document: the
// pivot's projected attributes as fields, each child node as an array of
// nested documents keyed by the child's node ID. This is the shape an
// object-oriented application (the paper's motivation) consumes.

// ToMap converts the instance to nested maps: projected attribute name →
// value (Go scalars; null → nil), child node ID → []map.
func (i *Instance) ToMap() map[string]any {
	return i.root.toMap(i.def)
}

func (n *InstNode) toMap(def *Definition) map[string]any {
	schema := def.schemaOf(n.node)
	out := make(map[string]any, len(n.node.Attrs)+len(n.node.Children))
	for _, attr := range n.node.Attrs {
		idx, ok := schema.AttrIndex(attr)
		if !ok {
			continue
		}
		out[attr] = valueToAny(n.tuple[idx])
	}
	for _, child := range n.node.Children {
		kids := n.children[child.ID]
		docs := make([]any, len(kids))
		for j, k := range kids {
			docs[j] = k.toMap(def)
		}
		out[child.ID] = docs
	}
	return out
}

func valueToAny(v reldb.Value) any {
	switch v.Kind() {
	case reldb.KindNull:
		return nil
	case reldb.KindInt:
		n, _ := v.AsInt()
		return n
	case reldb.KindFloat:
		f, _ := v.AsFloat()
		return f
	case reldb.KindString:
		s, _ := v.AsString()
		return s
	case reldb.KindBool:
		b, _ := v.AsBool()
		return b
	default:
		return v.String()
	}
}

// MarshalJSON implements json.Marshaler: the instance serializes as its
// nested-document form.
func (i *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(i.ToMap())
}

// InstanceFromMap builds an instance of def from a nested document of the
// shape ToMap produces. Attributes absent from a document become null;
// unknown field names that are not child node IDs are rejected. Values
// must be JSON scalars assignable to the attribute types (JSON numbers
// arrive as float64 and are narrowed to int attributes when integral).
func InstanceFromMap(def *Definition, doc map[string]any) (*Instance, error) {
	tuple, err := tupleFromDoc(def, def.root, doc)
	if err != nil {
		return nil, err
	}
	inst, err := NewInstance(def, tuple)
	if err != nil {
		return nil, err
	}
	if err := fillFromDoc(def, inst.root, doc); err != nil {
		return nil, err
	}
	return inst, nil
}

func tupleFromDoc(def *Definition, n *Node, doc map[string]any) (reldb.Tuple, error) {
	schema := def.schemaOf(n)
	childIDs := make(map[string]bool, len(n.Children))
	for _, c := range n.Children {
		childIDs[c.ID] = true
	}
	tuple := make(reldb.Tuple, schema.Arity())
	for field, raw := range doc {
		if childIDs[field] {
			continue
		}
		idx, ok := schema.AttrIndex(field)
		if !ok {
			return nil, fmt.Errorf("viewobject: node %s: document field %q is neither an attribute of %s nor a child node",
				n.ID, field, n.Relation)
		}
		v, err := anyToValue(schema.Attr(idx).Type, raw)
		if err != nil {
			return nil, fmt.Errorf("viewobject: node %s: field %q: %w", n.ID, field, err)
		}
		tuple[idx] = v
	}
	return tuple, nil
}

func fillFromDoc(def *Definition, in *InstNode, doc map[string]any) error {
	for _, child := range in.node.Children {
		raw, ok := doc[child.ID]
		if !ok || raw == nil {
			continue
		}
		list, ok := raw.([]any)
		if !ok {
			return fmt.Errorf("viewobject: node %s: child %s must be an array", in.node.ID, child.ID)
		}
		for _, item := range list {
			childDoc, ok := item.(map[string]any)
			if !ok {
				return fmt.Errorf("viewobject: node %s: child %s holds a non-object element", in.node.ID, child.ID)
			}
			tuple, err := tupleFromDoc(def, child, childDoc)
			if err != nil {
				return err
			}
			cn, err := in.AddChild(def, child.ID, tuple)
			if err != nil {
				return err
			}
			if err := fillFromDoc(def, cn, childDoc); err != nil {
				return err
			}
		}
	}
	return nil
}

func anyToValue(kind reldb.Kind, raw any) (reldb.Value, error) {
	if raw == nil {
		return reldb.Null(), nil
	}
	switch kind {
	case reldb.KindInt:
		switch x := raw.(type) {
		case int:
			return reldb.Int(int64(x)), nil
		case int64:
			return reldb.Int(x), nil
		case float64:
			if x != float64(int64(x)) {
				return reldb.Null(), fmt.Errorf("value %v is not an integer", x)
			}
			return reldb.Int(int64(x)), nil
		}
	case reldb.KindFloat:
		switch x := raw.(type) {
		case float64:
			return reldb.Float(x), nil
		case int:
			return reldb.Float(float64(x)), nil
		case int64:
			return reldb.Float(float64(x)), nil
		}
	case reldb.KindString:
		if x, ok := raw.(string); ok {
			return reldb.String(x), nil
		}
	case reldb.KindBool:
		if x, ok := raw.(bool); ok {
			return reldb.Bool(x), nil
		}
	}
	return reldb.Null(), fmt.Errorf("value %v (%T) is not assignable to %s", raw, raw, kind)
}

// UnmarshalInstance parses JSON into an instance of def.
func UnmarshalInstance(def *Definition, data []byte) (*Instance, error) {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("viewobject: %w", err)
	}
	return InstanceFromMap(def, doc)
}
