package viewobject_test

import (
	"errors"
	"fmt"
	"testing"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/university"
	. "penguin/internal/viewobject"
	"penguin/internal/workload"
)

func TestSetParallelism(t *testing.T) {
	prev := SetParallelism(3)
	defer SetParallelism(prev)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism = %d after SetParallelism(3)", got)
	}
	if old := SetParallelism(0); old != 3 {
		t.Fatalf("SetParallelism returned %d, want previous 3", old)
	}
	// 0 restores GOMAXPROCS tracking: the effective value is whatever the
	// runtime says, but always at least 1.
	if got := Parallelism(); got < 1 {
		t.Fatalf("default Parallelism = %d, want >= 1", got)
	}
	if old := SetParallelism(-5); old != 0 {
		t.Fatalf("SetParallelism(-5) returned %d, want 0 (tracking)", old)
	}
}

// The pivot probe: an indexable equality predicate must run as a point
// or index probe charging only the tuples it visits, not a whole-
// relation scan — and must select exactly the pivots the scan would.
func TestPivotProbeChargesOnlyVisitedTuples(t *testing.T) {
	w, err := workload.BuildTree(workload.TreeSpec{Depth: 1, Width: 1, Fanout: 1, Roots: 40})
	if err != nil {
		t.Fatal(err)
	}
	// A pivot-only definition isolates the pivot-selection cost: no child
	// traversal contributes to tuples_scanned.
	g := structural.NewGraph(w.DB)
	def, err := NewDefinition("pivot-only", g, &Node{Relation: "N0"})
	if err != nil {
		t.Fatal(err)
	}
	scannedBy := func(q Query) (int64, []*Instance) {
		before := obs.Capture()
		insts, err := Instantiate(w.DB, def, q)
		if err != nil {
			t.Fatal(err)
		}
		d := obs.Capture().Sub(before)
		return d.Counter("viewobject.instantiate.tuples_scanned"), insts
	}

	// Equality on the pivot key: a point probe visiting exactly 1 tuple.
	probeScanned, probed := scannedBy(Query{PivotPred: reldb.Eq("K0", reldb.Int(3))})
	if len(probed) != 1 {
		t.Fatalf("probe selected %d instances, want 1", len(probed))
	}
	if probeScanned != 1 {
		t.Fatalf("probe charged %d scanned tuples, want 1", probeScanned)
	}

	// The same predicate wrapped so EqConjunction rejects it (a 1-term
	// Or) takes the scan path: same instances, whole relation charged.
	scanScanned, scanned := scannedBy(Query{
		PivotPred: reldb.Or{Terms: []reldb.Expr{reldb.Eq("K0", reldb.Int(3))}},
	})
	if len(scanned) != 1 || scanned[0].Render() != probed[0].Render() {
		t.Fatalf("scan and probe paths disagree: %d instances", len(scanned))
	}
	if scanScanned != 40 {
		t.Fatalf("scan charged %d tuples, want the whole relation (40)", scanScanned)
	}

	// A non-indexed attribute falls back to the scan honestly.
	vScanned, vInsts := scannedBy(Query{PivotPred: reldb.Eq("V", reldb.String("root7"))})
	if len(vInsts) != 1 || vScanned != 40 {
		t.Fatalf("non-indexed equality: %d instances, %d scanned; want 1, 40", len(vInsts), vScanned)
	}
}

// Satellite check for the probe on a richer object: the probe-eligible
// and scan-forced selections of the university Omega must render
// byte-identically.
func TestPivotProbeMatchesScanOnOmega(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	render := func(q Query) []string {
		insts, err := Instantiate(db, om, q)
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(t, insts)
	}
	key := cs345Key()
	probe := render(Query{PivotPred: reldb.Eq("CourseID", key[0])})
	scan := render(Query{PivotPred: reldb.Or{Terms: []reldb.Expr{reldb.Eq("CourseID", key[0])}}})
	if len(probe) == 0 || len(probe) != len(scan) {
		t.Fatalf("probe %d instances, scan %d", len(probe), len(scan))
	}
	for i := range probe {
		if probe[i] != scan[i] {
			t.Fatalf("instance %d differs between probe and scan pivot selection", i)
		}
	}
}

func TestParallelInstantiationMetrics(t *testing.T) {
	w, err := workload.BuildTree(workload.TreeSpec{Depth: 2, Width: 2, Fanout: 3, Roots: 16, Peninsulas: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := SetParallelism(4)
	defer SetParallelism(prev)

	before := obs.Capture()
	insts, err := Instantiate(w.DB, w.Def, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 16 {
		t.Fatalf("%d instances, want 16", len(insts))
	}
	d := obs.Capture().Sub(before)
	workers := d.Counter("viewobject.parallel.workers")
	chunks := d.Counter("viewobject.parallel.chunks")
	if workers < 2 || workers > 4 {
		t.Fatalf("parallel.workers = %d, want 2..4", workers)
	}
	if chunks < workers || chunks > 16 {
		t.Fatalf("parallel.chunks = %d (workers %d)", chunks, workers)
	}
	if n := d.Histogram("viewobject.instantiate.parallel_ns").Count; n != 1 {
		t.Fatalf("parallel_ns observed %d times, want 1", n)
	}
	if n := d.LabeledHistogramValue("viewobject.instantiate.parallel_ns", w.Def.Name).Count; n != 1 {
		t.Fatalf("labeled parallel_ns observed %d times, want 1", n)
	}

	// With a budget of 1 the fan-out (and its metrics) must not engage.
	SetParallelism(1)
	before = obs.Capture()
	if _, err := Instantiate(w.DB, w.Def, Query{}); err != nil {
		t.Fatal(err)
	}
	d = obs.Capture().Sub(before)
	if n := d.Counter("viewobject.parallel.workers"); n != 0 {
		t.Fatalf("sequential run counted %d parallel workers", n)
	}
	if n := d.Histogram("viewobject.instantiate.parallel_ns").Count; n != 0 {
		t.Fatalf("sequential run observed parallel_ns %d times", n)
	}
}

// failingResolver resolves through the database until it meets failRel,
// which always errors — simulating a mid-assembly resolution failure
// inside the worker pool.
type failingResolver struct {
	db      *reldb.Database
	failRel string
}

var errResolveBoom = errors.New("resolver boom")

func (f *failingResolver) Relation(name string) (*reldb.Relation, error) {
	if name == f.failRel {
		return nil, fmt.Errorf("%s: %w", name, errResolveBoom)
	}
	return f.db.Relation(name)
}

func TestParallelErrorPropagation(t *testing.T) {
	w, err := workload.BuildTree(workload.TreeSpec{Depth: 2, Width: 2, Fanout: 2, Roots: 12})
	if err != nil {
		t.Fatal(err)
	}
	prev := SetParallelism(4)
	defer SetParallelism(prev)

	// Every worker hits the failure when it descends to the failing child
	// relation; the fan-out must drain cleanly and surface the error.
	res := &failingResolver{db: w.DB, failRel: "N0_0_0"}
	insts, err := Instantiate(res, w.Def, Query{})
	if !errors.Is(err, errResolveBoom) {
		t.Fatalf("err = %v, want errResolveBoom", err)
	}
	if insts != nil {
		t.Fatalf("errored Instantiate returned %d instances, want nil", len(insts))
	}

	// The sequential path reports the same error.
	SetParallelism(1)
	if _, err := Instantiate(res, w.Def, Query{}); !errors.Is(err, errResolveBoom) {
		t.Fatalf("sequential err = %v, want errResolveBoom", err)
	}
}

// The range probe: an ordering predicate over the pivot key must serve
// from the cached ordered view — full scan charged once on the build,
// only the window afterward — and must select exactly the pivots the
// scan would, in the same order.
func TestPivotRangeProbe(t *testing.T) {
	w, err := workload.BuildTree(workload.TreeSpec{Depth: 1, Width: 1, Fanout: 1, Roots: 40})
	if err != nil {
		t.Fatal(err)
	}
	g := structural.NewGraph(w.DB)
	def, err := NewDefinition("pivot-only-range", g, &Node{Relation: "N0"})
	if err != nil {
		t.Fatal(err)
	}
	scannedBy := func(q Query) (int64, []*Instance) {
		before := obs.Capture()
		insts, err := Instantiate(w.DB, def, q)
		if err != nil {
			t.Fatal(err)
		}
		d := obs.Capture().Sub(before)
		return d.Counter("viewobject.instantiate.tuples_scanned"), insts
	}
	rangePred := reldb.And{Terms: []reldb.Expr{
		reldb.Cmp{Op: reldb.OpGe, L: reldb.Attr{Name: "K0"}, R: reldb.Const{V: reldb.Int(10)}},
		reldb.Cmp{Op: reldb.OpLt, L: reldb.Attr{Name: "K0"}, R: reldb.Const{V: reldb.Int(20)}},
	}}

	// First range on this relation version builds the ordered view: the
	// whole relation is charged, exactly like a scan.
	buildScanned, built := scannedBy(Query{PivotPred: rangePred})
	if len(built) != 10 {
		t.Fatalf("range selected %d instances, want 10", len(built))
	}
	if buildScanned != 40 {
		t.Fatalf("view build charged %d tuples, want the whole relation (40)", buildScanned)
	}

	// Repeats (even with different bounds) binary-search the cached view,
	// charging only the selected window.
	hitScanned, hit := scannedBy(Query{PivotPred: rangePred})
	if len(hit) != 10 || hitScanned != 10 {
		t.Fatalf("cached range: %d instances, %d scanned; want 10, 10", len(hit), hitScanned)
	}
	narrowScanned, narrow := scannedBy(Query{PivotPred: reldb.Cmp{
		Op: reldb.OpGt, L: reldb.Attr{Name: "K0"}, R: reldb.Const{V: reldb.Int(36)},
	}})
	if len(narrow) != 3 || narrowScanned != 3 {
		t.Fatalf("narrow range: %d instances, %d scanned; want 3, 3", len(narrow), narrowScanned)
	}

	// The same predicate forced down the scan path selects identically.
	_, scanInsts := scannedBy(Query{PivotPred: reldb.Or{Terms: []reldb.Expr{rangePred}}})
	if len(scanInsts) != len(hit) {
		t.Fatalf("scan and range paths disagree: %d vs %d instances", len(scanInsts), len(hit))
	}
	for i := range hit {
		if hit[i].Render() != scanInsts[i].Render() {
			t.Fatalf("instance %d differs between range probe and scan selection", i)
		}
	}
}

// Work stealing: a wide level must split across spare worker tokens —
// and produce instances byte-identical to a sequential fill, which is
// the whole point of the disjoint-segment design.
func TestLevelWorkStealingMatchesSequential(t *testing.T) {
	w, err := workload.BuildTree(workload.TreeSpec{Depth: 2, Width: 2, Fanout: 10, Roots: 2, Peninsulas: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two pivots keep the chunked fan-out off (below minParallelPivots),
	// so any parallelism below comes from level stealing alone.
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	before := obs.Capture()
	stolen, err := Instantiate(w.DB, w.Def, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if n := obs.Capture().Sub(before).Counter("viewobject.parallel.steals"); n == 0 {
		t.Fatal("wide levels with spare workers recorded no steals")
	}

	SetParallelism(1)
	before = obs.Capture()
	sequential, err := Instantiate(w.DB, w.Def, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if n := obs.Capture().Sub(before).Counter("viewobject.parallel.steals"); n != 0 {
		t.Fatalf("parallelism 1 stole %d times", n)
	}

	if len(stolen) != len(sequential) || len(stolen) != 2 {
		t.Fatalf("instance counts: stolen %d, sequential %d, want 2", len(stolen), len(sequential))
	}
	for i := range stolen {
		if stolen[i].Render() != sequential[i].Render() {
			t.Fatalf("instance %d differs between stolen and sequential assembly:\n%s\n---\n%s",
				i, stolen[i].Render(), sequential[i].Render())
		}
	}
}
