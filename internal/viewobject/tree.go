package viewobject

import (
	"fmt"
	"sort"
	"strings"

	"penguin/internal/structural"
)

// TreeNode is one vertex of the expanded tree of Figure 2(b). A base
// relation can occur several times (one TreeNode per distinct path from
// the pivot), which is how the expansion breaks circuits in the subgraph.
type TreeNode struct {
	// ID names the occurrence: the relation name for the first copy,
	// "REL#2", "REL#3", ... for further copies in preorder.
	ID string
	// Relation is the base relation this occurrence projects.
	Relation string
	// Edge links the parent occurrence's relation to this one. It is the
	// zero Edge at the root.
	Edge structural.Edge
	// Relevance is the path relevance from the pivot to this occurrence.
	Relevance float64
	// Children in deterministic expansion order.
	Children []*TreeNode

	parent *TreeNode
}

// Parent returns the parent occurrence (nil at the root).
func (n *TreeNode) Parent() *TreeNode { return n.parent }

// PathFromRoot returns the edges from the pivot down to this node.
func (n *TreeNode) PathFromRoot() []structural.Edge {
	if n.parent == nil {
		return nil
	}
	return append(n.parent.PathFromRoot(), n.Edge)
}

// Tree is the fully expanded tree of projections of Figure 2(b): it
// "specifies all possible configurations for view objects anchored on"
// the pivot — every subset of its nodes containing the root is a valid
// configuration.
type Tree struct {
	Sub  *Subgraph
	Root *TreeNode
	byID map[string]*TreeNode
}

// BuildTree runs the second stage of the Figure 2 pipeline: it expands
// all paths in the subgraph emanating from the pivot until either a path
// would revisit a relation already on it (a circuit, so the expansion
// stops) or the path relevance falls below the metric threshold (the
// relation is "no longer relevant" at that depth).
func BuildTree(sub *Subgraph) *Tree {
	t := &Tree{Sub: sub, byID: make(map[string]*TreeNode)}
	t.Root = &TreeNode{Relation: sub.Pivot, Relevance: 1.0}

	var expand func(n *TreeNode, onPath map[string]bool)
	expand = func(n *TreeNode, onPath map[string]bool) {
		for _, e := range sub.Edges(n.Relation) {
			target := e.Target()
			if onPath[target] {
				continue // would create a cycle; go no further
			}
			r := n.Relevance * sub.metric.Weight(e)
			if r < sub.metric.Threshold {
				continue // no longer relevant at this depth
			}
			child := &TreeNode{Relation: target, Edge: e, Relevance: r, parent: n}
			n.Children = append(n.Children, child)
			onPath[target] = true
			expand(child, onPath)
			delete(onPath, target)
		}
	}
	expand(t.Root, map[string]bool{sub.Pivot: true})
	t.assignIDs()
	return t
}

// assignIDs names each occurrence. The shallowest occurrence of a relation
// gets the plain relation name (ties broken by preorder), further copies
// get "REL#2", "REL#3", ... — so the most natural occurrence is always
// addressable without a copy suffix (ω's STUDENT is the one under GRADES,
// which is shallower than the one under DEPARTMENT-PEOPLE).
func (t *Tree) assignIDs() {
	type occ struct {
		n        *TreeNode
		depth    int
		preorder int
	}
	byRel := make(map[string][]occ)
	i := 0
	var walk func(n *TreeNode, depth int)
	walk = func(n *TreeNode, depth int) {
		byRel[n.Relation] = append(byRel[n.Relation], occ{n, depth, i})
		i++
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	for rel, occs := range byRel {
		sort.Slice(occs, func(a, b int) bool {
			if occs[a].depth != occs[b].depth {
				return occs[a].depth < occs[b].depth
			}
			return occs[a].preorder < occs[b].preorder
		})
		for k, o := range occs {
			if k == 0 {
				o.n.ID = rel
			} else {
				o.n.ID = fmt.Sprintf("%s#%d", rel, k+1)
			}
			t.byID[o.n.ID] = o.n
		}
	}
}

// Node returns the occurrence with the given ID.
func (t *Tree) Node(id string) (*TreeNode, bool) {
	n, ok := t.byID[id]
	return n, ok
}

// NodeIDs returns all occurrence IDs, sorted.
func (t *Tree) NodeIDs() []string {
	ids := make([]string, 0, len(t.byID))
	for id := range t.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Size returns the number of occurrences in the tree.
func (t *Tree) Size() int { return len(t.byID) }

// Occurrences returns the occurrence IDs of a relation, sorted; the
// length is the number of copies (Figure 2(b) has two PEOPLE copies).
func (t *Tree) Occurrences(rel string) []string {
	var ids []string
	for id, n := range t.byID {
		if n.Relation == rel {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Render produces the deterministic text form used to regenerate
// Figure 2(b).
func (t *Tree) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "expanded tree for pivot %s\n", t.Sub.Pivot)
	var walk func(n *TreeNode, prefix string, last bool)
	walk = func(n *TreeNode, prefix string, last bool) {
		if n.parent == nil {
			fmt.Fprintf(&b, "%s\n", n.ID)
		} else {
			branch := "├─ "
			if last {
				branch = "└─ "
			}
			sym := n.Edge.Conn.Type.Symbol()
			if !n.Edge.Forward {
				sym = "inv(" + sym + ")"
			}
			fmt.Fprintf(&b, "%s%s%s %s (relevance %.3f)\n", prefix, branch, sym, n.ID, n.Relevance)
		}
		childPrefix := prefix
		if n.parent != nil {
			if last {
				childPrefix += "   "
			} else {
				childPrefix += "│  "
			}
		}
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1)
		}
	}
	walk(t.Root, "", true)
	return b.String()
}

// Configure runs the third stage of the Figure 2 pipeline: pruning the
// tree into a concrete view object. include maps the IDs of the kept
// occurrences to their projected attributes (nil keeps every attribute).
// The root is always kept: an entry for it is optional and only needed to
// narrow its projection. When an intermediate occurrence is excluded, the
// kept descendant's connection path is the concatenation of the skipped
// tree edges — exactly how Figure 3's ω′ attaches STUDENT to COURSES
// through the excluded GRADES.
func (t *Tree) Configure(name string, include map[string][]string) (*Definition, error) {
	for id := range include {
		if _, ok := t.byID[id]; !ok {
			return nil, fmt.Errorf("viewobject: configure %s: no tree occurrence %s (have %s)",
				name, id, strings.Join(t.NodeIDs(), ", "))
		}
	}
	kept := func(n *TreeNode) bool {
		if n == t.Root {
			return true
		}
		_, ok := include[n.ID]
		return ok
	}
	// Build definition nodes for kept occurrences, wiring each to its
	// nearest kept ancestor and concatenating the skipped edges.
	defNodes := map[string]*Node{}
	rootAttrs := include[t.Root.ID]
	defRoot := &Node{ID: t.Root.ID, Relation: t.Root.Relation, Attrs: rootAttrs}
	defNodes[t.Root.ID] = defRoot

	var walk func(n *TreeNode, nearestKept *TreeNode, pathFromKept []structural.Edge)
	walk = func(n *TreeNode, nearestKept *TreeNode, pathFromKept []structural.Edge) {
		for _, c := range n.Children {
			childPath := append(append([]structural.Edge(nil), pathFromKept...), c.Edge)
			if kept(c) {
				dn := &Node{
					ID:       c.ID,
					Relation: c.Relation,
					Attrs:    include[c.ID],
					Path:     childPath,
				}
				defNodes[c.ID] = dn
				parent := defNodes[nearestKept.ID]
				dn.parent = parent
				parent.Children = append(parent.Children, dn)
				walk(c, c, nil)
			} else {
				walk(c, nearestKept, childPath)
			}
		}
	}
	walk(t.Root, t.Root, nil)

	// Every requested occurrence must have been attached.
	for id := range include {
		if _, ok := defNodes[id]; !ok {
			return nil, fmt.Errorf("viewobject: configure %s: occurrence %s was not reachable", name, id)
		}
	}
	return NewDefinition(name, t.Sub.graph, defRoot)
}

// Define runs the whole Figure 2 pipeline in one call: subgraph
// extraction, tree expansion, and pruning.
func Define(g *structural.Graph, name, pivot string, m Metric, include map[string][]string) (*Definition, error) {
	sub, err := ExtractSubgraph(g, pivot, m)
	if err != nil {
		return nil, err
	}
	return BuildTree(sub).Configure(name, include)
}
