package viewobject_test

import (
	"strings"
	"testing"

	"penguin/internal/structural"
	"penguin/internal/university"
	. "penguin/internal/viewobject"
)

func TestNewDefinitionValidation(t *testing.T) {
	_, g := university.New()
	courseGrades, _ := g.Connection(university.ConnCourseGrades)
	studentGrades, _ := g.Connection(university.ConnStudentGrades)

	valid := func() *Node {
		return &Node{
			Relation: university.Courses,
			Children: []*Node{{
				Relation: university.Grades,
				Path:     []structural.Edge{{Conn: courseGrades, Forward: true}},
			}},
		}
	}

	if _, err := NewDefinition("ok", g, valid()); err != nil {
		t.Fatalf("valid definition rejected: %v", err)
	}

	t.Run("nil root", func(t *testing.T) {
		if _, err := NewDefinition("d", g, nil); err == nil {
			t.Fatal("nil root accepted")
		}
	})
	t.Run("root with path", func(t *testing.T) {
		r := valid()
		r.Path = []structural.Edge{{Conn: courseGrades, Forward: true}}
		if _, err := NewDefinition("d", g, r); err == nil {
			t.Fatal("root with path accepted")
		}
	})
	t.Run("pivot key must be projected", func(t *testing.T) {
		r := valid()
		r.Attrs = []string{"Title"}
		_, err := NewDefinition("d", g, r)
		if err == nil || !strings.Contains(err.Error(), "key attribute") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("no second projection on pivot relation", func(t *testing.T) {
		r := valid()
		// Try to attach COURSES again below GRADES.
		r.Children[0].Children = []*Node{{
			Relation: university.Courses,
			Path:     []structural.Edge{{Conn: courseGrades, Forward: false}},
		}}
		_, err := NewDefinition("d", g, r)
		if err == nil || !strings.Contains(err.Error(), "Definition 3.2") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown relation", func(t *testing.T) {
		r := valid()
		r.Children[0].Relation = "NOPE"
		if _, err := NewDefinition("d", g, r); err == nil {
			t.Fatal("unknown relation accepted")
		}
	})
	t.Run("unknown attrs", func(t *testing.T) {
		r := valid()
		r.Children[0].Attrs = []string{"NoAttr"}
		if _, err := NewDefinition("d", g, r); err == nil {
			t.Fatal("unknown attr accepted")
		}
	})
	t.Run("missing path", func(t *testing.T) {
		r := valid()
		r.Children[0].Path = nil
		if _, err := NewDefinition("d", g, r); err == nil {
			t.Fatal("missing path accepted")
		}
	})
	t.Run("path source mismatch", func(t *testing.T) {
		r := valid()
		r.Children[0].Path = []structural.Edge{{Conn: studentGrades, Forward: true}}
		_, err := NewDefinition("d", g, r)
		if err == nil || !strings.Contains(err.Error(), "starts at") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("path target mismatch", func(t *testing.T) {
		r := valid()
		r.Children[0].Relation = university.Student
		_, err := NewDefinition("d", g, r)
		if err == nil || !strings.Contains(err.Error(), "ends at") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("foreign connection", func(t *testing.T) {
		r := valid()
		alien := *courseGrades // a copy: same name, different pointer
		r.Children[0].Path = []structural.Edge{{Conn: &alien, Forward: true}}
		_, err := NewDefinition("d", g, r)
		if err == nil || !strings.Contains(err.Error(), "not in the structural schema") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("duplicate IDs", func(t *testing.T) {
		r := valid()
		r.ID = "X"
		r.Children[0].ID = "X"
		_, err := NewDefinition("d", g, r)
		if err == nil || !strings.Contains(err.Error(), "duplicate node ID") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestDefinitionAccessors(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	if om.Graph() != g {
		t.Fatal("Graph() wrong")
	}
	nodes := om.Nodes()
	if len(nodes) != 5 || nodes[0] != om.Root() {
		t.Fatalf("Nodes() = %d, first is root: %v", len(nodes), nodes[0] == om.Root())
	}
	n, ok := om.Node(university.Grades)
	if !ok || n.Relation != university.Grades {
		t.Fatal("Node(GRADES) wrong")
	}
	if _, ok := om.Node("NOPE"); ok {
		t.Fatal("unknown node found")
	}
	if om.Root().Parent() != nil {
		t.Fatal("root parent should be nil")
	}
	if n.Parent() != om.Root() {
		t.Fatal("GRADES parent should be root")
	}
}

func TestDefaultAttrsAreAllAttributes(t *testing.T) {
	_, g := university.New()
	courseGrades, _ := g.Connection(university.ConnCourseGrades)
	d, err := NewDefinition("d", g, &Node{
		Relation: university.Courses,
		Children: []*Node{{
			Relation: university.Grades,
			Path:     []structural.Edge{{Conn: courseGrades, Forward: true}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Root().Attrs) != 5 {
		t.Fatalf("root attrs defaulted to %v", d.Root().Attrs)
	}
	gn, _ := d.Node(university.Grades)
	if len(gn.Attrs) != 4 {
		t.Fatalf("grades attrs defaulted to %v", gn.Attrs)
	}
}

func TestDefinitionRender(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	out := om.Render()
	for _, want := range []string{
		"view object omega (pivot COURSES, key CourseID, complexity 5)",
		"COURSES (CourseID, Title, DeptName, Units, Level)",
		"--> DEPARTMENT (DeptName, Building)",
		"--* GRADES",
		"inv(--*) STUDENT",
		"inv(-->) CURRICULUM",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// ω′ shows compressed multi-edge paths.
	op := university.MustOmegaPrime(g)
	out = op.Render()
	if !strings.Contains(out, "--*·inv(--*) STUDENT") {
		t.Errorf("ω′ Render missing compressed path:\n%s", out)
	}
}

func TestMustDefinitionPanics(t *testing.T) {
	_, g := university.New()
	defer func() {
		if recover() == nil {
			t.Fatal("MustDefinition should panic")
		}
	}()
	MustDefinition("bad", g, nil)
}

// Multiple objects can share a pivot (the paper's sharing property):
// ω and ω′ coexist over the same database.
func TestMultipleObjectsSamePivot(t *testing.T) {
	_, g := university.New()
	om := university.MustOmega(g)
	op := university.MustOmegaPrime(g)
	if om.Pivot() != op.Pivot() {
		t.Fatal("objects should share the pivot")
	}
	if om.Complexity() == op.Complexity() {
		t.Fatal("distinct configurations expected")
	}
}
