package viewobject_test

import (
	"strings"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/university"
	. "penguin/internal/viewobject"
)

func seededOmega(t *testing.T) (*reldb.Database, *Definition) {
	t.Helper()
	db, g := university.MustNewSeeded()
	return db, university.MustOmega(g)
}

func cs345Key() reldb.Tuple { return reldb.Tuple{reldb.String("CS345")} }

func TestInstantiateByKey(t *testing.T) {
	db, om := seededOmega(t)
	inst, ok, err := InstantiateByKey(db, om, cs345Key())
	if err != nil || !ok {
		t.Fatalf("InstantiateByKey: %v, %v", ok, err)
	}
	if !inst.Key().Equal(cs345Key()) {
		t.Fatalf("key = %v", inst.Key())
	}
	// CS345 has 3 grades, each with its student, 1 department, 2 curricula.
	if n := inst.Count(university.Grades); n != 3 {
		t.Fatalf("GRADES components = %d, want 3", n)
	}
	if n := inst.Count(university.Student); n != 3 {
		t.Fatalf("STUDENT components = %d, want 3", n)
	}
	if n := inst.Count(university.Department); n != 1 {
		t.Fatalf("DEPARTMENT components = %d, want 1", n)
	}
	if n := inst.Count(university.Curriculum); n != 2 {
		t.Fatalf("CURRICULUM components = %d, want 2", n)
	}
	// Each STUDENT hangs under the GRADES row with the matching PID.
	for _, gr := range inst.Root().Children(university.Grades) {
		students := gr.Children(university.Student)
		if len(students) != 1 {
			t.Fatalf("grade %v has %d students", gr.Tuple(), len(students))
		}
		if !gr.Tuple()[1].Equal(students[0].Tuple()[0]) {
			t.Fatalf("student PID mismatch: %v vs %v", gr.Tuple(), students[0].Tuple())
		}
	}
	// Missing key.
	_, ok, err = InstantiateByKey(db, om, reldb.Tuple{reldb.String("NOPE")})
	if err != nil || ok {
		t.Fatalf("missing key: %v, %v", ok, err)
	}
}

// Figure 4: graduate courses with fewer than 5 students enrolled.
func TestInstantiateFigure4Query(t *testing.T) {
	db, om := seededOmega(t)
	insts, err := Instantiate(db, om, Query{
		PivotPred:  reldb.Eq("Level", reldb.String("graduate")),
		CountConds: []CountCond{{NodeID: university.Student, Op: reldb.OpLt, N: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, i := range insts {
		ids = append(ids, i.Key()[0].MustString())
	}
	// CS345 (3 students) and CS445 (2) qualify; EE380 (5) does not.
	if strings.Join(ids, ",") != "CS345,CS445" {
		t.Fatalf("Figure 4 result = %v, want CS345,CS445", ids)
	}
}

func TestInstantiateAll(t *testing.T) {
	db, om := seededOmega(t)
	insts, err := Instantiate(db, om, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 6 {
		t.Fatalf("instances = %d, want 6 (one per course)", len(insts))
	}
	// Key order.
	prev := ""
	for _, i := range insts {
		id := i.Key()[0].MustString()
		if id < prev {
			t.Fatalf("instances out of key order: %s after %s", id, prev)
		}
		prev = id
	}
}

func TestInstantiateNodePred(t *testing.T) {
	db, om := seededOmega(t)
	// Courses where at least one PhD student is enrolled.
	insts, err := Instantiate(db, om, Query{
		NodePreds: []NodePred{{
			NodeID: university.Student,
			Pred:   reldb.Eq("Degree", reldb.String("PhD")),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, i := range insts {
		ids[i.Key()[0].MustString()] = true
	}
	for _, want := range []string{"CS101", "CS345", "CS445", "EE380"} {
		if !ids[want] {
			t.Errorf("missing %s in %v", want, ids)
		}
	}
	if ids["ME301"] {
		t.Error("ME301 has no PhD students")
	}
}

func TestInstantiateQueryErrors(t *testing.T) {
	db, om := seededOmega(t)
	if _, err := Instantiate(db, om, Query{
		NodePreds: []NodePred{{NodeID: "NOPE", Pred: reldb.Eq("X", reldb.Int(1))}},
	}); err == nil {
		t.Fatal("unknown node pred accepted")
	}
	if _, err := Instantiate(db, om, Query{
		CountConds: []CountCond{{NodeID: "NOPE", Op: reldb.OpLt, N: 5}},
	}); err == nil {
		t.Fatal("unknown count node accepted")
	}
	if _, err := Instantiate(db, om, Query{
		PivotPred: reldb.Eq("NoAttr", reldb.Int(1)),
	}); err == nil {
		t.Fatal("bad pivot predicate accepted")
	}
	if _, err := Instantiate(db, om, Query{
		NodePreds: []NodePred{{NodeID: university.Student, Pred: reldb.Eq("NoAttr", reldb.Int(1))}},
	}); err == nil {
		t.Fatal("bad node predicate accepted")
	}
}

// ω′: instantiation across multi-connection paths (Figure 3).
func TestInstantiateOmegaPrime(t *testing.T) {
	db, g := university.MustNewSeeded()
	op := university.MustOmegaPrime(g)
	inst, ok, err := InstantiateByKey(db, op, cs345Key())
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	// STUDENT reached through GRADES: the 3 enrolled students.
	if n := inst.Count(university.Student); n != 3 {
		t.Fatalf("ω′ students = %d, want 3", n)
	}
	// FACULTY reached through DEPARTMENT-PEOPLE: CS faculty (Frank, PID 6).
	fac := inst.NodesAt(university.Faculty)
	if len(fac) != 1 {
		t.Fatalf("ω′ faculty = %d, want 1", len(fac))
	}
	if pid := fac[0].Tuple()[0].MustInt(); pid != 6 {
		t.Fatalf("faculty PID = %d, want 6", pid)
	}
	// Students are direct children of the root in ω′.
	if got := len(inst.Root().Children(university.Student)); got != 3 {
		t.Fatalf("root students = %d", got)
	}
}

// Path traversal deduplicates: two grades by the same student in different
// quarters yield one STUDENT component in ω′.
func TestTraversePathDedup(t *testing.T) {
	db, g := university.MustNewSeeded()
	// Give student 1 a second CS345 grade in another quarter — the GRADES
	// key is (CourseID, PID), so use a different course's tuple instead:
	// enroll student 1 twice via two distinct grades is impossible for the
	// same course; instead verify dedup across multi-step paths directly.
	op := university.MustOmegaPrime(g)
	st, _ := op.Node(university.Student)
	courses := db.MustRelation(university.Courses)
	cs345, _ := courses.Get(cs345Key())
	tuples, err := TraversePath(db, cs345, st.Path)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tu := range tuples {
		k := tu.Encode()
		if seen[k] {
			t.Fatalf("duplicate tuple %v from TraversePath", tu)
		}
		seen[k] = true
	}
	if len(tuples) != 3 {
		t.Fatalf("traversal = %d tuples, want 3", len(tuples))
	}
}

func TestTraversePathNullBreaks(t *testing.T) {
	db, g := university.MustNewSeeded()
	// A course with a null DeptName reaches no DEPARTMENT.
	err := db.RunInTx(func(tx *reldb.Tx) error {
		return tx.Insert(university.Courses, reldb.Tuple{
			reldb.String("X999"), reldb.String("Mystery"), reldb.Null(), reldb.Int(1), reldb.String("undergraduate"),
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	om := university.MustOmega(g)
	inst, ok, err := InstantiateByKey(db, om, reldb.Tuple{reldb.String("X999")})
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	if n := inst.Count(university.Department); n != 0 {
		t.Fatalf("null FK produced %d departments", n)
	}
}

func TestInstanceBuildByHand(t *testing.T) {
	_, om := seededOmega(t)
	s, i := reldb.String, reldb.Int
	inst := MustNewInstance(om, reldb.Tuple{s("CS999"), s("New Course"), s("Computer Science"), i(3), s("graduate")})
	gr := inst.Root().MustAddChild(om, university.Grades, reldb.Tuple{s("CS999"), i(1), s("Aut91"), s("A")})
	gr.MustAddChild(om, university.Student, reldb.Tuple{i(1), s("PhD"), i(3)})
	inst.Root().MustAddChild(om, university.Department, reldb.Tuple{s("Computer Science"), s("Gates"), reldb.Null()})

	if !inst.Key().Equal(reldb.Tuple{s("CS999")}) {
		t.Fatalf("key = %v", inst.Key())
	}
	if inst.Count(university.Student) != 1 || inst.Count(university.Grades) != 1 {
		t.Fatal("hand-built structure wrong")
	}
	// Unknown child node.
	if _, err := inst.Root().AddChild(om, "FACULTY", reldb.Tuple{i(1), s("Prof"), reldb.Bool(true)}); err == nil {
		t.Fatal("ω has no FACULTY child")
	}
	// Invalid tuple for child relation.
	if _, err := inst.Root().AddChild(om, university.Grades, reldb.Tuple{s("CS999")}); err == nil {
		t.Fatal("short tuple accepted")
	}
}

func TestInstanceCloneIndependent(t *testing.T) {
	db, om := seededOmega(t)
	inst, _, err := InstantiateByKey(db, om, cs345Key())
	if err != nil {
		t.Fatal(err)
	}
	c := inst.Clone()
	if err := c.Root().SetAttr(om, "Title", reldb.String("Renamed")); err != nil {
		t.Fatal(err)
	}
	v, _ := inst.Root().Get(om, "Title")
	if v.MustString() != "Database Systems" {
		t.Fatal("Clone aliases the original")
	}
	cv, _ := c.Root().Get(om, "Title")
	if cv.MustString() != "Renamed" {
		t.Fatal("SetAttr lost")
	}
}

func TestInstanceSettersValidate(t *testing.T) {
	db, om := seededOmega(t)
	inst, _, _ := InstantiateByKey(db, om, cs345Key())
	if err := inst.Root().SetTuple(om, reldb.Tuple{reldb.Null()}); err == nil {
		t.Fatal("invalid SetTuple accepted")
	}
	if err := inst.Root().SetAttr(om, "NoAttr", reldb.Int(1)); err == nil {
		t.Fatal("unknown attr accepted")
	}
	if _, ok := inst.Root().Get(om, "NoAttr"); ok {
		t.Fatal("Get unknown attr should be !ok")
	}
	// Setting a key attr to null must fail validation.
	if err := inst.Root().SetAttr(om, "CourseID", reldb.Null()); err == nil {
		t.Fatal("null key accepted")
	}
}

func TestProjectedRespectsProjection(t *testing.T) {
	db, g := university.MustNewSeeded()
	// Narrow ω variant: DEPARTMENT projected to DeptName only.
	d, err := Define(g, "narrow", university.Courses, DefaultMetric(), map[string][]string{
		university.Courses:    {"CourseID", "Title"},
		university.Department: {"DeptName"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, ok, err := InstantiateByKey(db, d, cs345Key())
	if err != nil || !ok {
		t.Fatal(err)
	}
	root := inst.Root().Projected(d)
	if len(root) != 2 {
		t.Fatalf("projected root = %v", root)
	}
	dep := inst.Root().Children(university.Department)[0].Projected(d)
	if len(dep) != 1 || dep[0].MustString() != "Computer Science" {
		t.Fatalf("projected dept = %v", dep)
	}
	// Full tuple still available internally for joins.
	full := inst.Root().Children(university.Department)[0].Tuple()
	if len(full) != 3 {
		t.Fatalf("full dept tuple = %v", full)
	}
}

func TestInstanceRenderFigure4(t *testing.T) {
	db, om := seededOmega(t)
	inst, _, _ := InstantiateByKey(db, om, cs345Key())
	out := inst.Render()
	for _, want := range []string{
		"instance of omega, key (CS345)",
		"COURSES: (CS345, Database Systems, Computer Science, 4, graduate)",
		"DEPARTMENT: (Computer Science, Gates)",
		"GRADES: (CS345, 1, Win91, A)",
		"STUDENT: (1, PhD, 3)",
		"CURRICULUM: (Computer Science, MS, CS345)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestNewInstanceValidatesPivot(t *testing.T) {
	_, om := seededOmega(t)
	if _, err := NewInstance(om, reldb.Tuple{reldb.Null()}); err == nil {
		t.Fatal("invalid pivot tuple accepted")
	}
}

func TestMustHelpersPanic(t *testing.T) {
	_, om := seededOmega(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewInstance should panic")
		}
	}()
	MustNewInstance(om, reldb.Tuple{reldb.Null()})
}
