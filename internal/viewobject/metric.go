package viewobject

import (
	"fmt"
	"sort"
	"strings"

	"penguin/internal/structural"
)

// Metric is the information metric that decides which relations can
// contribute useful information to an object anchored on a given pivot
// (§3; detailed in Barsalou's thesis, which this implementation
// substitutes with a configurable path-relevance metric — see DESIGN.md).
//
// Every traversal step carries a weight in (0, 1]; the relevance of a
// relation is the maximum product of weights over paths from the pivot,
// and a relation is relevant when its relevance reaches Threshold. The
// same decay bounds tree expansion, which is what keeps Figure 2(b)'s
// tree finite.
type Metric struct {
	// Weights maps each traversal step kind to its decay factor.
	Weights map[StepKind]float64
	// Threshold is the minimum relevance for inclusion.
	Threshold float64
}

// StepKind classifies a traversal step by connection type and direction.
type StepKind struct {
	Type structural.ConnType
	// Forward is true when the step follows the connection's direction.
	Forward bool
}

// String implements fmt.Stringer.
func (k StepKind) String() string {
	dir := "forward"
	if !k.Forward {
		dir = "inverse"
	}
	return k.Type.String() + "/" + dir
}

// DefaultMetric returns the weights used throughout the reproduction.
// They are calibrated so that the university schema anchored on COURSES
// reproduces the paper's Figure 2 exactly: all eight relations are
// relevant, and the expanded tree contains exactly two copies of PEOPLE
// (one per path from COURSES).
func DefaultMetric() Metric {
	return Metric{
		Weights: map[StepKind]float64{
			{structural.Ownership, true}:  0.9, // owner → owned detail
			{structural.Ownership, false}: 0.8, // owned → owner context
			{structural.Subset, true}:     0.8, // general → specialization
			{structural.Subset, false}:    0.8, // specialization → general
			{structural.Reference, true}:  0.8, // entity → referenced abstraction
			{structural.Reference, false}: 0.5, // abstraction → referencing entities
		},
		Threshold: 0.3,
	}
}

// Weight returns the decay factor of an edge under the metric.
func (m Metric) Weight(e structural.Edge) float64 {
	w, ok := m.Weights[StepKind{e.Conn.Type, e.Forward}]
	if !ok {
		return 0
	}
	return w
}

// Relevance computes the relevance of every relation reachable from pivot:
// the maximum product of edge weights over all paths. It is a Dijkstra-style
// best-first search in the (max, ×) semiring.
func (m Metric) Relevance(g *structural.Graph, pivot string) map[string]float64 {
	rel := map[string]float64{pivot: 1.0}
	// Frontier as a simple priority list; schemas are small.
	type item struct {
		rel string
		r   float64
	}
	frontier := []item{{pivot, 1.0}}
	for len(frontier) > 0 {
		// Pop the highest-relevance item.
		best := 0
		for i := range frontier {
			if frontier[i].r > frontier[best].r {
				best = i
			}
		}
		cur := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		if cur.r < rel[cur.rel] {
			continue // stale entry
		}
		for _, e := range g.Edges(cur.rel) {
			next := e.Target()
			r := cur.r * m.Weight(e)
			if r > rel[next] {
				rel[next] = r
				frontier = append(frontier, item{next, r})
			}
		}
	}
	return rel
}

// Subgraph is the relevant portion of a structural schema for a given
// pivot (Figure 2(a)): the relations whose relevance reaches the metric's
// threshold, and every connection between two relevant relations.
type Subgraph struct {
	Pivot string
	// Relevance holds each included relation's relevance score.
	Relevance map[string]float64
	// Conns are the connections between included relations, in the
	// structural schema's insertion order.
	Conns []*structural.Connection

	graph  *structural.Graph
	metric Metric
}

// ExtractSubgraph runs the first stage of the Figure 2 pipeline.
func ExtractSubgraph(g *structural.Graph, pivot string, m Metric) (*Subgraph, error) {
	if !g.Database().HasRelation(pivot) {
		return nil, fmt.Errorf("viewobject: pivot relation %s is not defined", pivot)
	}
	all := m.Relevance(g, pivot)
	kept := make(map[string]float64)
	for rel, r := range all {
		if r >= m.Threshold {
			kept[rel] = r
		}
	}
	sub := &Subgraph{Pivot: pivot, Relevance: kept, graph: g, metric: m}
	for _, c := range g.Connections() {
		if _, okF := kept[c.From]; !okF {
			continue
		}
		if _, okT := kept[c.To]; !okT {
			continue
		}
		sub.Conns = append(sub.Conns, c)
	}
	return sub, nil
}

// Relations returns the included relation names, sorted.
func (s *Subgraph) Relations() []string {
	names := make([]string, 0, len(s.Relevance))
	for n := range s.Relevance {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Contains reports whether rel is part of the subgraph.
func (s *Subgraph) Contains(rel string) bool {
	_, ok := s.Relevance[rel]
	return ok
}

// Edges returns the traversal steps available from rel within the
// subgraph (both directions), in deterministic order.
func (s *Subgraph) Edges(rel string) []structural.Edge {
	var out []structural.Edge
	for _, c := range s.Conns {
		if c.From == rel {
			out = append(out, structural.Edge{Conn: c, Forward: true})
		}
	}
	for _, c := range s.Conns {
		if c.To == rel {
			out = append(out, structural.Edge{Conn: c, Forward: false})
		}
	}
	return out
}

// Render produces the deterministic text form used to regenerate
// Figure 2(a).
func (s *Subgraph) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "relevant subgraph for pivot %s (threshold %.2f)\n", s.Pivot, s.metric.Threshold)
	b.WriteString("relations:\n")
	for _, rel := range s.Relations() {
		fmt.Fprintf(&b, "  %-12s relevance %.3f\n", rel, s.Relevance[rel])
	}
	b.WriteString("connections:\n")
	for _, c := range s.Conns {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	return b.String()
}
