package viewobject_test

import (
	"testing"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/university"
	. "penguin/internal/viewobject"
	"penguin/internal/workload"
)

// renderAll materializes every instance deterministically.
func renderAll(t *testing.T, insts []*Instance) []string {
	t.Helper()
	out := make([]string, len(insts))
	for i, in := range insts {
		out[i] = in.Render()
	}
	return out
}

// dropAllIndexes removes every secondary index in the database, forcing
// traversal onto the scan path.
func dropAllIndexes(t *testing.T, db *reldb.Database) {
	t.Helper()
	for _, name := range db.Names() {
		rel := db.MustRelation(name)
		for _, ix := range rel.IndexNames() {
			if err := rel.DropIndex(ix); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// The differential acceptance test: batched level-at-a-time assembly —
// sequential and parallel — must emit byte-identical instances, in the
// same order, as the naive parent-at-a-time path — on the indexed and
// index-less (shared-scan) variants of the workload fixture and on the
// university Omega object.
func TestBatchedAssemblyMatchesNaiveByteForByte(t *testing.T) {
	spec := workload.TreeSpec{Depth: 2, Width: 2, Fanout: 3, Roots: 7, Peninsulas: 1}

	// run assembles all instances with one configuration: naive selects
	// the parent-at-a-time path, workers the parallelism budget (1 forces
	// a sequential batched run, >1 fans out — the fixture's root counts
	// clear minParallelPivots).
	run := func(t *testing.T, res structural.Resolver, def *Definition, naive bool, workers int) []string {
		t.Helper()
		prevNaive := SetNaiveAssembly(naive)
		defer SetNaiveAssembly(prevNaive)
		prevPar := SetParallelism(workers)
		defer SetParallelism(prevPar)
		insts, err := Instantiate(res, def, Query{})
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(t, insts)
	}
	compare := func(t *testing.T, res structural.Resolver, def *Definition) {
		t.Helper()
		naive := run(t, res, def, true, 1)
		if len(naive) == 0 {
			t.Fatal("fixture produced no instances")
		}
		for name, got := range map[string][]string{
			"batched":          run(t, res, def, false, 1),
			"parallel batched": run(t, res, def, false, 4),
		} {
			if len(naive) != len(got) {
				t.Fatalf("naive assembled %d instances, %s %d", len(naive), name, len(got))
			}
			for i := range naive {
				if naive[i] != got[i] {
					t.Fatalf("instance %d differs:\n--- naive ---\n%s\n--- %s ---\n%s", i, naive[i], name, got[i])
				}
			}
		}
	}

	t.Run("workload indexed", func(t *testing.T) {
		w, err := workload.BuildTree(spec)
		if err != nil {
			t.Fatal(err)
		}
		compare(t, w.DB, w.Def)
	})
	t.Run("workload index-less", func(t *testing.T) {
		w, err := workload.BuildTree(spec)
		if err != nil {
			t.Fatal(err)
		}
		dropAllIndexes(t, w.DB)
		compare(t, w.DB, w.Def)
	})
	t.Run("university omega", func(t *testing.T) {
		db, g := university.MustNewSeeded()
		compare(t, db, university.MustOmega(g))
	})
	t.Run("by key", func(t *testing.T) {
		db, g := university.MustNewSeeded()
		om := university.MustOmega(g)
		byKey := func(naive bool) string {
			prev := SetNaiveAssembly(naive)
			defer SetNaiveAssembly(prev)
			inst, ok, err := InstantiateByKey(db, om, cs345Key())
			if err != nil || !ok {
				t.Fatalf("InstantiateByKey: %v, %v", ok, err)
			}
			return inst.Render()
		}
		if byKey(true) != byKey(false) {
			t.Fatal("InstantiateByKey differs between naive and batched assembly")
		}
	})
}

// instantiationRatio assembles every instance of the workload and returns
// tuples_scanned / nodes over the run.
func instantiationRatio(t *testing.T, w *workload.Workload) float64 {
	t.Helper()
	before := obs.Capture()
	insts, err := Instantiate(w.DB, w.Def, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) == 0 {
		t.Fatal("no instances assembled")
	}
	delta := obs.Capture().Sub(before)
	scanned := delta.Counter("viewobject.instantiate.tuples_scanned")
	nodes := delta.Counter("viewobject.instantiate.nodes")
	if nodes == 0 {
		t.Fatal("no nodes counted")
	}
	return float64(scanned) / float64(nodes)
}

// The scan-amplification acceptance test: on the workload stress fixture
// the batched path's tuples_scanned/nodes ratio must be at least 5× lower
// than the naive per-parent path's. Measured on the index-less variant,
// where the difference is purely the batching (one shared scan per level
// versus one scan per parent); with the auto edge indexes the ratio drops
// to ~1 for both paths.
func TestBatchedAssemblyCollapsesScanRatio(t *testing.T) {
	spec := workload.TreeSpec{Depth: 2, Width: 2, Fanout: 4, Roots: 30, Peninsulas: 1}
	build := func() *workload.Workload {
		w, err := workload.BuildTree(spec)
		if err != nil {
			t.Fatal(err)
		}
		dropAllIndexes(t, w.DB)
		return w
	}

	prev := SetNaiveAssembly(true)
	naiveRatio := instantiationRatio(t, build())
	SetNaiveAssembly(false)
	batchedRatio := instantiationRatio(t, build())
	SetNaiveAssembly(prev)

	if naiveRatio < 5*batchedRatio {
		t.Fatalf("scan ratio did not collapse: naive %.2f, batched %.2f (want >= 5x drop)",
			naiveRatio, batchedRatio)
	}

	// With the auto edge indexes in place the batched ratio stays as low.
	w, err := workload.BuildTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	indexedRatio := instantiationRatio(t, w)
	if indexedRatio > batchedRatio+1 {
		t.Fatalf("indexed ratio %.2f above index-less batched ratio %.2f", indexedRatio, batchedRatio)
	}

	// The batched run issues a bounded number of lookups: one per
	// (level, path edge), not one per parent tuple.
	before := obs.Capture()
	if _, err := Instantiate(w.DB, w.Def, Query{}); err != nil {
		t.Fatal(err)
	}
	delta := obs.Capture().Sub(before)
	lookups := delta.Counter("viewobject.instantiate.batched_lookups")
	nodes := delta.Counter("viewobject.instantiate.nodes")
	if lookups == 0 {
		t.Fatal("batched_lookups not counted")
	}
	if lookups >= nodes/10 {
		t.Fatalf("batched lookups = %d for %d nodes; batching is not level-at-a-time", lookups, nodes)
	}
	if delta.Histogram("viewobject.instantiate.level_fanout").Count == 0 {
		t.Fatal("level_fanout histogram not observed")
	}
}

// A pivot selection that errors must not bump the scan counter (the scan
// did not complete).
func TestInstantiatePivotErrorDoesNotCountScans(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	before := obs.Capture()
	_, err := Instantiate(db, om, Query{PivotPred: reldb.Eq("NoSuchAttr", reldb.Int(1))})
	if err == nil {
		t.Fatal("bad pivot predicate accepted")
	}
	delta := obs.Capture().Sub(before)
	if n := delta.Counter("viewobject.instantiate.tuples_scanned"); n != 0 {
		t.Fatalf("error path counted %d scanned tuples, want 0", n)
	}
	if n := delta.Counter("viewobject.instantiate.calls"); n != 0 {
		t.Fatalf("error path counted %d instantiations, want 0", n)
	}
}

// Multi-edge paths must dedup intermediate fan-in identically in both
// assembly paths: two MID rows lead to the same TGT row, which must
// appear exactly once among the pivot's components.
func TestTraverseMultiEdgeDedupBatched(t *testing.T) {
	db := reldb.NewDatabase()
	db.MustCreateRelation(reldb.MustSchema("PIVOT", []reldb.Attribute{
		{Name: "K", Type: reldb.KindInt},
	}, []string{"K"}))
	db.MustCreateRelation(reldb.MustSchema("MID", []reldb.Attribute{
		{Name: "ID", Type: reldb.KindInt},
		{Name: "K", Type: reldb.KindInt, Nullable: true},
		{Name: "T", Type: reldb.KindInt, Nullable: true},
	}, []string{"ID"}))
	db.MustCreateRelation(reldb.MustSchema("TGT", []reldb.Attribute{
		{Name: "T", Type: reldb.KindInt},
	}, []string{"T"}))
	g := structural.NewGraph(db)
	toPivot := &structural.Connection{
		Name: "mid-pivot", Type: structural.Reference,
		From: "MID", To: "PIVOT",
		FromAttrs: []string{"K"}, ToAttrs: []string{"K"},
	}
	toTgt := &structural.Connection{
		Name: "mid-tgt", Type: structural.Reference,
		From: "MID", To: "TGT",
		FromAttrs: []string{"T"}, ToAttrs: []string{"T"},
	}
	g.MustAddConnection(toPivot)
	g.MustAddConnection(toTgt)

	mustInsert := func(rel string, rows ...reldb.Tuple) {
		r := db.MustRelation(rel)
		for _, row := range rows {
			if err := r.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	i := reldb.Int
	mustInsert("PIVOT", reldb.Tuple{i(1)}, reldb.Tuple{i(2)})
	mustInsert("TGT", reldb.Tuple{i(10)}, reldb.Tuple{i(20)})
	mustInsert("MID",
		// Pivot 1: two MID rows converge on TGT 10; one reaches TGT 20.
		reldb.Tuple{i(100), i(1), i(10)},
		reldb.Tuple{i(101), i(1), i(10)},
		reldb.Tuple{i(102), i(1), i(20)},
		// Pivot 2: a single path to TGT 20.
		reldb.Tuple{i(200), i(2), i(20)},
	)

	def, err := NewDefinition("dedup", g, &Node{
		Relation: "PIVOT",
		Children: []*Node{{
			Relation: "TGT",
			Path: []structural.Edge{
				{Conn: toPivot, Forward: false},
				{Conn: toTgt, Forward: true},
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, naive := range []bool{false, true} {
		prev := SetNaiveAssembly(naive)
		insts, err := Instantiate(db, def, Query{})
		SetNaiveAssembly(prev)
		if err != nil {
			t.Fatal(err)
		}
		if len(insts) != 2 {
			t.Fatalf("naive=%v: %d instances, want 2", naive, len(insts))
		}
		// Pivot 1 reaches TGT 10 (via two MID rows, deduped) and TGT 20.
		if n := insts[0].Count("TGT"); n != 2 {
			t.Fatalf("naive=%v: pivot 1 has %d TGT components, want 2 (dedup failed)", naive, n)
		}
		if n := insts[1].Count("TGT"); n != 1 {
			t.Fatalf("naive=%v: pivot 2 has %d TGT components, want 1", naive, n)
		}
		if insts[0].Render() == insts[1].Render() {
			t.Fatalf("naive=%v: distinct instances rendered identically", naive)
		}
	}
}
