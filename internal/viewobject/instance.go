package viewobject

import (
	"fmt"
	"sort"
	"strings"

	"penguin/internal/reldb"
)

// Instance is one hierarchical instance of a view object: the pivot tuple
// plus, per child node, the set of connected sub-instances. Instances are
// fully unnormalized entities with atomic-, tuple-, and set-valued
// attributes (§3).
//
// Internally every InstNode carries the full-width tuple of its base
// relation (connecting attributes are needed to assemble and to translate
// updates even when projected out); Projected exposes only the node's
// projection. Hand-built instances (update requests) may leave
// non-projected attributes null — the translation algorithms treat that as
// the paper's "extension with values for the attributes projected out".
type Instance struct {
	def  *Definition
	root *InstNode
}

// InstNode is one component tuple of an instance.
type InstNode struct {
	node     *Node
	tuple    reldb.Tuple
	children map[string][]*InstNode
}

// NewInstance creates an instance of def with the given pivot tuple
// (full-width, matching the pivot relation's schema).
func NewInstance(def *Definition, pivotTuple reldb.Tuple) (*Instance, error) {
	root, err := newInstNode(def, def.root, pivotTuple)
	if err != nil {
		return nil, err
	}
	return &Instance{def: def, root: root}, nil
}

// MustNewInstance is NewInstance that panics on error (fixtures).
func MustNewInstance(def *Definition, pivotTuple reldb.Tuple) *Instance {
	i, err := NewInstance(def, pivotTuple)
	if err != nil {
		panic(err)
	}
	return i
}

func newInstNode(def *Definition, n *Node, tuple reldb.Tuple) (*InstNode, error) {
	schema := def.schemaOf(n)
	if err := schema.CheckTuple(tuple); err != nil {
		return nil, fmt.Errorf("viewobject: instance node %s: %w", n.ID, err)
	}
	// children stays nil until the first AddChild: leaf components (the
	// majority of any instance tree) never pay for an empty map, which
	// keeps Clone cheap on deep extents.
	return &InstNode{node: n, tuple: tuple.Clone()}, nil
}

// Definition returns the object this instance belongs to.
func (i *Instance) Definition() *Definition { return i.def }

// Root returns the pivot component.
func (i *Instance) Root() *InstNode { return i.root }

// Key returns the object key of the instance: the pivot tuple's key
// values (Definition 3.2).
func (i *Instance) Key() reldb.Tuple {
	return i.def.schemaOf(i.def.root).KeyOf(i.root.tuple)
}

// Node returns the definition node this component instantiates.
func (n *InstNode) Node() *Node { return n.node }

// Tuple returns a copy of the component's full-width tuple.
func (n *InstNode) Tuple() reldb.Tuple { return n.tuple.Clone() }

// Children returns the sub-instances under the given child node ID, in
// insertion order.
func (n *InstNode) Children(childID string) []*InstNode {
	return append([]*InstNode(nil), n.children[childID]...)
}

// AddChild attaches a sub-instance for the named child node and returns
// it. The child ID must be one of the node's children in the definition;
// the tuple must be full-width for the child's relation.
func (n *InstNode) AddChild(def *Definition, childID string, tuple reldb.Tuple) (*InstNode, error) {
	var childNode *Node
	for _, c := range n.node.Children {
		if c.ID == childID {
			childNode = c
			break
		}
	}
	if childNode == nil {
		var have []string
		for _, c := range n.node.Children {
			have = append(have, c.ID)
		}
		return nil, fmt.Errorf("viewobject: node %s has no child %s (have %s)",
			n.node.ID, childID, strings.Join(have, ", "))
	}
	cn, err := newInstNode(def, childNode, tuple)
	if err != nil {
		return nil, err
	}
	if n.children == nil {
		n.children = make(map[string][]*InstNode, len(n.node.Children))
	}
	n.children[childID] = append(n.children[childID], cn)
	return cn, nil
}

// MustAddChild is AddChild that panics on error (fixtures).
func (n *InstNode) MustAddChild(def *Definition, childID string, tuple reldb.Tuple) *InstNode {
	cn, err := n.AddChild(def, childID, tuple)
	if err != nil {
		panic(err)
	}
	return cn
}

// Projected returns the component tuple restricted to the node's
// projection, in the projection's attribute order.
func (n *InstNode) Projected(def *Definition) reldb.Tuple {
	schema := def.schemaOf(n.node)
	idx, err := schema.Indices(n.node.Attrs)
	if err != nil {
		panic(err) // definition validated at construction
	}
	return n.tuple.Project(idx)
}

// NodesAt returns every component instance at the given definition node
// ID, across the whole instance, in document order.
func (i *Instance) NodesAt(nodeID string) []*InstNode {
	var out []*InstNode
	var walk func(n *InstNode)
	walk = func(n *InstNode) {
		if n.node.ID == nodeID {
			out = append(out, n)
		}
		for _, cid := range n.childIDs() {
			for _, c := range n.children[cid] {
				walk(c)
			}
		}
	}
	walk(i.root)
	return out
}

// Count returns the number of component instances at the given node ID.
func (i *Instance) Count(nodeID string) int { return len(i.NodesAt(nodeID)) }

// childIDs returns the node's child IDs in definition order.
func (n *InstNode) childIDs() []string {
	ids := make([]string, 0, len(n.node.Children))
	for _, c := range n.node.Children {
		ids = append(ids, c.ID)
	}
	return ids
}

// Clone deep-copies the instance; mutating the copy leaves the original
// untouched. Update requests typically clone the current instance and
// edit the copy.
func (i *Instance) Clone() *Instance {
	return &Instance{def: i.def, root: i.root.clone()}
}

func (n *InstNode) clone() *InstNode {
	// The tuple slice is shared, not copied: values are immutable and
	// every mutation path (SetTuple, and SetAttr through With) installs
	// a freshly allocated slice instead of writing elements in place, so
	// the original and the clone can never observe each other's edits.
	c := &InstNode{node: n.node, tuple: n.tuple}
	if len(n.children) > 0 {
		c.children = make(map[string][]*InstNode, len(n.children))
		for id, kids := range n.children {
			ck := make([]*InstNode, len(kids))
			for j, k := range kids {
				ck[j] = k.clone()
			}
			c.children[id] = ck
		}
	}
	return c
}

// SetTuple replaces the component's tuple (validated against the base
// schema). Used to build replacement requests.
func (n *InstNode) SetTuple(def *Definition, tuple reldb.Tuple) error {
	schema := def.schemaOf(n.node)
	if err := schema.CheckTuple(tuple); err != nil {
		return fmt.Errorf("viewobject: node %s: %w", n.node.ID, err)
	}
	n.tuple = tuple.Clone()
	return nil
}

// SetAttr overwrites one attribute of the component's tuple by name.
func (n *InstNode) SetAttr(def *Definition, attr string, v reldb.Value) error {
	schema := def.schemaOf(n.node)
	idx, ok := schema.AttrIndex(attr)
	if !ok {
		return fmt.Errorf("viewobject: node %s: relation %s has no attribute %s",
			n.node.ID, n.node.Relation, attr)
	}
	nt := n.tuple.With(idx, v)
	return n.SetTuple(def, nt)
}

// Get returns an attribute of the component tuple by name.
func (n *InstNode) Get(def *Definition, attr string) (reldb.Value, bool) {
	schema := def.schemaOf(n.node)
	idx, ok := schema.AttrIndex(attr)
	if !ok {
		return reldb.Null(), false
	}
	return n.tuple[idx], true
}

// Render produces the deterministic text form of the instance used to
// regenerate Figure 4: the pivot tuple followed by nested components,
// projected per the definition.
func (i *Instance) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instance of %s, key %s\n", i.def.Name, i.Key())
	var walk func(n *InstNode, prefix string, last bool, isRoot bool)
	walk = func(n *InstNode, prefix string, last bool, isRoot bool) {
		line := fmt.Sprintf("%s: %s", n.node.ID, n.Projected(i.def))
		if isRoot {
			b.WriteString(line + "\n")
		} else {
			branch := "├─ "
			if last {
				branch = "└─ "
			}
			b.WriteString(prefix + branch + line + "\n")
		}
		childPrefix := prefix
		if !isRoot {
			if last {
				childPrefix += "   "
			} else {
				childPrefix += "│  "
			}
		}
		// Flatten children in definition order, with a stable sort of
		// instances by tuple encoding for determinism.
		for _, cid := range n.childIDs() {
			kids := append([]*InstNode(nil), n.children[cid]...)
			sort.SliceStable(kids, func(a, b int) bool {
				return kids[a].tuple.Encode() < kids[b].tuple.Encode()
			})
			for j, c := range kids {
				lastChild := j == len(kids)-1 && cid == lastChildID(n)
				walk(c, childPrefix, lastChild, false)
			}
		}
	}
	walk(i.root, "", true, true)
	return b.String()
}

// lastChildID returns the ID of the last child node that actually has
// instances, so tree glyphs close correctly.
func lastChildID(n *InstNode) string {
	last := ""
	for _, cid := range n.childIDs() {
		if len(n.children[cid]) > 0 {
			last = cid
		}
	}
	return last
}
