package penguin_test

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
	"penguin/internal/workload"
)

// TestScaleIntegration exercises the whole stack at ~50k rows: seed,
// snapshot to disk and back, instantiate, update through objects, audit.
func TestScaleIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	db, g := university.New()
	spec := university.ScaleSpec{
		Departments:      40,
		StudentsPerDept:  100,
		FacultyPerDept:   5,
		CoursesPerDept:   20,
		GradesPerCourse:  40,
		DegreesPerDept:   3,
		CoursesPerDegree: 4,
	}
	if err := university.SeedScaled(db, spec); err != nil {
		t.Fatal(err)
	}
	total := db.TotalRows()
	if total < 40_000 {
		t.Fatalf("scale too small: %d rows", total)
	}
	t.Logf("seeded %d rows", total)

	// Snapshot round trip through a real file.
	path := filepath.Join(t.TempDir(), "scale.db")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := reldb.ReadSnapshot(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalRows() != total {
		t.Fatalf("snapshot lost rows: %d vs %d", loaded.TotalRows(), total)
	}

	// Object work at scale.
	om := university.MustOmega(g)
	u := vupdate.NewUpdater(vupdate.PermissiveTranslator(om))
	inst, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{reldb.String("C000-005")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if inst.Count(university.Grades) != spec.GradesPerCourse {
		t.Fatalf("grades = %d, want %d", inst.Count(university.Grades), spec.GradesPerCourse)
	}

	// Delete 10 courses, rename 10 more.
	for i := 0; i < 10; i++ {
		key := reldb.Tuple{reldb.String(fmt.Sprintf("C%03d-%03d", i, 0))}
		if _, err := u.DeleteByKey(key); err != nil {
			t.Fatalf("delete %v: %v", key, err)
		}
	}
	for i := 0; i < 10; i++ {
		key := reldb.Tuple{reldb.String(fmt.Sprintf("C%03d-%03d", i, 1))}
		old, ok, err := viewobject.InstantiateByKey(db, om, key)
		if err != nil || !ok {
			t.Fatalf("instance %v: %v %v", key, ok, err)
		}
		repl := old.Clone()
		if err := repl.Root().SetAttr(om, "CourseID", reldb.String(fmt.Sprintf("REN-%03d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := u.ReplaceInstance(old, repl); err != nil {
			t.Fatalf("replace %v: %v", key, err)
		}
	}

	in := &structural.Integrity{G: g}
	vs, err := in.Audit(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("%d violations after scale updates", len(vs))
	}
}

// TestParallelInstantiationSpeedup asserts that the worker fan-out buys
// wall-clock time on multi-core hosts. Correctness is not at stake here
// (byte-identical output is pinned by the differential tests); this is
// purely a perf gate, so it only runs where a speedup is physically
// possible — with fewer than 4 hardware threads the workers time-slice
// one core and the fan-out can only add scheduler overhead. The
// threshold is deliberately below the ~linear scaling seen on idle
// 4-core hosts to keep shared CI runners from flaking.
func TestParallelInstantiationSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup test skipped in -short mode")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("requires >= 4 CPUs for a measurable speedup, have %d", n)
	}
	w, err := workload.BuildTree(parallelBenchSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Best-of-N wall time at a fixed worker budget; one warm-up pass
	// populates plan caches and the page allocator so both budgets
	// measure steady state.
	measure := func(workers int) time.Duration {
		prev := viewobject.SetParallelism(workers)
		defer viewobject.SetParallelism(prev)
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 4; i++ {
			start := time.Now()
			insts, err := viewobject.Instantiate(w.DB, w.Def, viewobject.Query{})
			if err != nil {
				t.Fatal(err)
			}
			if len(insts) != parallelBenchSpec.Roots {
				t.Fatalf("%d instances, want %d", len(insts), parallelBenchSpec.Roots)
			}
			if d := time.Since(start); i > 0 && d < best {
				best = d
			}
		}
		return best
	}
	seq := measure(1)
	par := measure(4)
	ratio := float64(seq) / float64(par)
	t.Logf("sequential %v, 4 workers %v, speedup %.2fx", seq, par, ratio)
	if ratio < 1.4 {
		t.Errorf("parallel instantiation speedup %.2fx < 1.4x (seq %v, par %v)", ratio, seq, par)
	}
}

// TestMaterializedReadSpeedup is the perf gate for the materialized
// view-object cache: on the university fixture a patched-cache hit must
// be at least 5x faster than a cold full instantiation at the same
// generation. Correctness is not at stake (the differential tests pin
// the two paths byte-identical); this guards the point of the cache —
// that serving patched instances skips the per-read traversal work.
func TestMaterializedReadSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup test skipped in -short mode")
	}
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	m := viewobject.NewMaterializer(db, om)
	defer m.Close()
	if _, err := m.Instantiate(viewobject.Query{}); err != nil {
		t.Fatal(err) // build the cache cold once
	}
	readHit := func() error {
		insts, err := m.Instantiate(viewobject.Query{})
		if err == nil && len(insts) != 6 {
			return fmt.Errorf("%d instances, want 6", len(insts))
		}
		return err
	}
	readCold := func() error {
		rtx := db.BeginRead()
		defer rtx.Close()
		insts, err := viewobject.Instantiate(rtx, om, viewobject.Query{})
		if err == nil && len(insts) != 6 {
			return fmt.Errorf("%d instances, want 6", len(insts))
		}
		return err
	}
	// Interleaved best-of-N: the two modes alternate within each round so
	// host-load bursts hit both alike, and best-of discards the bursts.
	// Round 0 is warm-up for plan caches and the allocator.
	const reads = 50
	batch := func(read func() error) time.Duration {
		start := time.Now()
		for r := 0; r < reads; r++ {
			if err := read(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	hit := time.Duration(1<<63 - 1)
	cold := hit
	for i := 0; i < 8; i++ {
		h, c := batch(readHit), batch(readCold)
		if i == 0 {
			continue
		}
		if h < hit {
			hit = h
		}
		if c < cold {
			cold = c
		}
	}
	ratio := float64(cold) / float64(hit)
	t.Logf("materialized hit %v, cold instantiate %v, speedup %.2fx", hit, cold, ratio)
	if ratio < 5 {
		t.Errorf("materialized read speedup %.2fx < 5x (hit %v, cold %v)", ratio, hit, cold)
	}
}

// TestConcurrentTransactions hammers the database from many goroutines;
// the single-writer transaction discipline must serialize them without
// losing or duplicating rows (run with -race in CI).
func TestConcurrentTransactions(t *testing.T) {
	db := reldb.NewDatabase()
	db.MustCreateRelation(reldb.MustSchema("N", []reldb.Attribute{
		{Name: "ID", Type: reldb.KindInt},
		{Name: "Writer", Type: reldb.KindInt},
	}, []string{"ID"}))

	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(w*perWriter + i)
				err := db.RunInTx(func(tx *reldb.Tx) error {
					return tx.Insert("N", reldb.Tuple{reldb.Int(id), reldb.Int(int64(w))})
				})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Reads serialize through a no-op transaction so they
				// never observe a torn write.
				_ = db.RunInTx(func(tx *reldb.Tx) error {
					rel, err := tx.Relation("N")
					if err != nil {
						return err
					}
					_ = rel.Count()
					return nil
				})
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := db.MustRelation("N").Count(); got != writers*perWriter {
		t.Fatalf("rows = %d, want %d", got, writers*perWriter)
	}
}
