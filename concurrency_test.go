// Concurrency acceptance tests over the university fixture: snapshot
// readers instantiating ω while writers run VO-CD / VO-CI / VO-R update
// translations. These are the top-level proof (run with `go test -race`)
// that the unlocked read path is gone: instantiation reads through
// snapshot-isolated ReadTx values and never observes a torn instance.
package penguin_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"penguin"
	"penguin/internal/reldb"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
	"penguin/internal/workload"
)

// TestConcurrentInstantiationDuringUpdates runs 4 snapshot readers
// instantiating ω for every course while one writer cycles a course
// through VO-R (title stamp), VO-CD, and VO-CI. Readers assert that an
// instance, when present, is whole: it carries the same GRADES /
// CURRICULUM component counts as the seeded state and exactly one
// DEPARTMENT component. A read overlapping a half-applied translation
// would see a partial shape; snapshot isolation makes that impossible.
func TestConcurrentInstantiationDuringUpdates(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	u := vupdate.NewUpdater(vupdate.PermissiveTranslator(om))

	const hot = "CS345" // the course the writer churns
	courses := courseIDs(t, db)

	// Record the seeded component shape of every course; VO-R / VO-CD /
	// VO-CI preserve it, so any deviation is a torn read.
	type shape struct{ grades, curriculum int }
	want := make(map[string]shape)
	for _, id := range courses {
		inst, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{reldb.String(id)})
		if err != nil || !ok {
			t.Fatalf("seed instantiate %s: ok=%v err=%v", id, ok, err)
		}
		want[id] = shape{
			grades:     inst.Count(university.Grades),
			curriculum: inst.Count(university.Curriculum),
		}
	}

	const readers = 4
	const cycles = 60
	stop := make(chan struct{})
	errs := make(chan error, readers+1)
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for i := r; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := courses[i%len(courses)]
				rtx := db.BeginRead()
				inst, ok, err := viewobject.InstantiateByKey(rtx, om, reldb.Tuple{reldb.String(id)})
				rtx.Close()
				if err != nil {
					errs <- fmt.Errorf("reader %d: %s: %v", r, id, err)
					return
				}
				if !ok {
					if id != hot { // only the hot course is ever deleted
						errs <- fmt.Errorf("reader %d: course %s vanished", r, id)
						return
					}
					continue
				}
				w := want[id]
				if got := inst.Count(university.Grades); got != w.grades {
					errs <- fmt.Errorf("reader %d: %s has %d GRADES, want %d (torn)", r, id, got, w.grades)
					return
				}
				if got := inst.Count(university.Curriculum); got != w.curriculum {
					errs <- fmt.Errorf("reader %d: %s has %d CURRICULUM, want %d (torn)", r, id, got, w.curriculum)
					return
				}
				if got := inst.Count(university.Department); got != 1 {
					errs <- fmt.Errorf("reader %d: %s has %d DEPARTMENT components (torn)", r, id, got)
					return
				}
			}
		}(r)
	}

	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		key := reldb.Tuple{reldb.String(hot)}
		for c := 0; c < cycles; c++ {
			// VO-R: restamp the title in place.
			rtx := db.BeginRead()
			cur, ok, err := viewobject.InstantiateByKey(rtx, om, key)
			rtx.Close()
			if err != nil || !ok {
				errs <- fmt.Errorf("writer: capture cycle %d: ok=%v err=%v", c, ok, err)
				return
			}
			repl := cur.Clone()
			if err := repl.Root().SetAttr(om, "Title", reldb.String(fmt.Sprintf("Databases (rev %d)", c))); err != nil {
				errs <- err
				return
			}
			if _, err := u.ReplaceInstance(cur, repl); err != nil {
				errs <- fmt.Errorf("writer: VO-R cycle %d: %v", c, err)
				return
			}
			// VO-CD then VO-CI: delete the whole instance and put it back.
			if _, err := u.DeleteByKey(key); err != nil {
				errs <- fmt.Errorf("writer: VO-CD cycle %d: %v", c, err)
				return
			}
			if _, err := u.InsertInstance(repl); err != nil {
				errs <- fmt.Errorf("writer: VO-CI cycle %d: %v", c, err)
				return
			}
		}
	}()
	wwg.Wait()
	close(stop)
	rwg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// After the churn the hot course must be whole in the committed state.
	inst, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{reldb.String(hot)})
	if err != nil || !ok {
		t.Fatalf("final instantiate: ok=%v err=%v", ok, err)
	}
	if got := inst.Count(university.Grades); got != want[hot].grades {
		t.Fatalf("final GRADES count %d, want %d", got, want[hot].grades)
	}
}

// TestReadTxForkPreviewDuringWrites runs vupdate previews (what-if reads
// on a ReadTx fork) concurrently with committing writers; previews must
// neither block on nor perturb the live database.
func TestReadTxForkPreviewDuringWrites(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	u := vupdate.NewUpdater(vupdate.PermissiveTranslator(om))
	before := db.MustRelation(university.Grades).Count()

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				res, err := u.PreviewDeleteByKey(reldb.Tuple{reldb.String("CS101")})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Ops) == 0 {
					errs <- fmt.Errorf("preview %d produced no operations", i)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			pid := int64(1000 + i)
			err := db.RunInTx(func(tx *reldb.Tx) error {
				return tx.Insert(university.Grades,
					reldb.Tuple{reldb.String("CS101"), reldb.Int(pid), reldb.String("Spr91"), reldb.String("B")})
			})
			if err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// Previews were what-if only: CS108 still exists, and exactly the
	// writer's 30 grade rows were added.
	if !db.MustRelation(university.Courses).Has(reldb.Tuple{reldb.String("CS101")}) {
		t.Fatal("preview deleted CS101 from the live database")
	}
	if got := db.MustRelation(university.Grades).Count(); got != before+30 {
		t.Fatalf("GRADES count %d, want %d", got, before+30)
	}
}

// TestConcurrentMetricCoherence hammers the commit path from several
// writers while a sampler goroutine snapshots the metrics mid-flight.
// The histogram ordering contract (bucket, sum, count written in that
// order; count read first) means a sampled commit-latency histogram may
// trail the buckets but never lead them — Count <= ΣBuckets always, and
// after the writers quiesce the counters match the work performed
// exactly: commits recorded == commits performed, Count == ΣBuckets.
func TestConcurrentMetricCoherence(t *testing.T) {
	db, _ := university.MustNewSeeded()
	before := penguin.Stats()

	const writers = 4
	const perWriter = 50
	stop := make(chan struct{})
	var torn atomic.Int64
	var swg sync.WaitGroup
	swg.Add(1)
	go func() {
		defer swg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := penguin.Stats().Histogram("reldb.tx.commit_ns")
			var sum int64
			for _, b := range st.Buckets {
				sum += b
			}
			if st.Count > sum {
				torn.Add(1)
			}
		}
	}()

	errs := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				pid := int64(10_000 + w*perWriter + i)
				err := db.RunInTx(func(tx *reldb.Tx) error {
					return tx.Insert(university.Grades,
						reldb.Tuple{reldb.String("CS101"), reldb.Int(pid), reldb.String("Spr91"), reldb.String("A")})
				})
				if err != nil {
					errs <- fmt.Errorf("writer %d insert %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	swg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if n := torn.Load(); n != 0 {
		t.Errorf("sampler observed %d torn histogram reads (Count > ΣBuckets)", n)
	}
	delta := penguin.Stats().Sub(before)
	if got := delta.Counter("reldb.tx.commits"); got != writers*perWriter {
		t.Errorf("reldb.tx.commits = %d, want %d (commits performed)", got, writers*perWriter)
	}
	hist := delta.Histogram("reldb.tx.commit_ns")
	if hist.Count != writers*perWriter {
		t.Errorf("commit_ns.count = %d, want %d", hist.Count, writers*perWriter)
	}
	var sum int64
	for _, b := range hist.Buckets {
		sum += b
	}
	if sum != hist.Count {
		t.Errorf("quiesced histogram torn: Count=%d ΣBuckets=%d", hist.Count, sum)
	}
}

// TestStressMetricsCoherent runs the workload stress suite and checks
// the metric delta it captured is internally coherent: every commit the
// counter recorded also landed in the latency histogram, and every
// committed update translation was counted.
func TestStressMetricsCoherent(t *testing.T) {
	res, err := workload.RunStress(workload.StressSpec{
		Tree:    workload.TreeSpec{Depth: 2, Width: 2, Fanout: 2, Roots: 4},
		Readers: 3,
		Writers: 2,
		Cycles:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("stress violations: %v", res.Violations)
	}
	m := res.Metrics
	commits := m.Counter("reldb.tx.commits")
	if commits == 0 {
		t.Fatal("stress run recorded no commits")
	}
	if got := m.Histogram("reldb.tx.commit_ns").Count; got != commits {
		t.Errorf("commit_ns.count = %d, want %d (commits counter)", got, commits)
	}
	performed := res.Replaces + res.Deletes + res.Inserts
	if got := m.Counter("vupdate.updates.committed"); got < performed {
		t.Errorf("updates.committed = %d, want >= %d (stress tallies)", got, performed)
	}
	if s := res.Summary(); !strings.Contains(s, "stress: ") || !strings.Contains(s, "violations") {
		t.Errorf("summary line malformed: %s", s)
	}
}

// courseIDs lists the seeded course keys.
func courseIDs(t *testing.T, db *reldb.Database) []string {
	t.Helper()
	var ids []string
	db.MustRelation(university.Courses).Scan(func(tup reldb.Tuple) bool {
		s, _ := tup[0].AsString()
		ids = append(ids, s)
		return true
	})
	if len(ids) == 0 {
		t.Fatal("no courses seeded")
	}
	return ids
}
