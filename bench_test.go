// Benchmark harness: one benchmark per experiment of DESIGN.md's index
// (E1-E12), regenerating every figure-stage of the paper and measuring
// the performance experiments the paper argues qualitatively. Run with
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the measured shapes against the paper's claims.
package penguin_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"penguin"
	"penguin/internal/keller"
	"penguin/internal/obs"
	"penguin/internal/oql"
	"penguin/internal/reldb"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
	"penguin/internal/workload"
)

// E1 — Figure 1: constructing and validating the structural schema.
func BenchmarkFig1SchemaConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, g := university.New()
		if err := g.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// E2 — Figure 2(a): relevant-subgraph extraction via the information
// metric.
func BenchmarkFig2aSubgraphExtraction(b *testing.B) {
	_, g := university.New()
	m := viewobject.DefaultMetric()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := viewobject.ExtractSubgraph(g, university.Courses, m); err != nil {
			b.Fatal(err)
		}
	}
}

// E3 — Figure 2(b): tree expansion with circuit breaking.
func BenchmarkFig2bTreeGeneration(b *testing.B) {
	_, g := university.New()
	sub, err := viewobject.ExtractSubgraph(g, university.Courses, viewobject.DefaultMetric())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := viewobject.BuildTree(sub)
		if tree.Size() == 0 {
			b.Fatal("empty tree")
		}
	}
}

// E4 — Figure 2(c): pruning the tree into ω.
func BenchmarkFig2cPruning(b *testing.B) {
	_, g := university.New()
	sub, err := viewobject.ExtractSubgraph(g, university.Courses, viewobject.DefaultMetric())
	if err != nil {
		b.Fatal(err)
	}
	tree := viewobject.BuildTree(sub)
	include := map[string][]string{
		university.Courses:    {"CourseID", "Title", "DeptName", "Units", "Level"},
		university.Department: {"DeptName", "Building"},
		university.Curriculum: {"DeptName", "Degree", "CourseID"},
		university.Grades:     {"CourseID", "PID", "Quarter", "Grade"},
		university.Student:    {"PID", "Degree", "Year"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Configure("omega", include); err != nil {
			b.Fatal(err)
		}
	}
}

// E5 — Figure 3: the alternate object ω′ (full pipeline, multi-connection
// paths).
func BenchmarkFig3AlternateObject(b *testing.B) {
	_, g := university.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := university.OmegaPrime(g); err != nil {
			b.Fatal(err)
		}
	}
}

// E6 — Figure 4: instantiating ω for "graduate courses with less than 5
// students enrolled", at growing database scale.
func BenchmarkFig4Instantiation(b *testing.B) {
	for _, scale := range []struct {
		name  string
		depts int
	}{
		{"3courses", 1}, {"30courses", 5}, {"300courses", 50},
	} {
		b.Run(scale.name, func(b *testing.B) {
			db, g := university.New()
			err := university.SeedScaled(db, university.ScaleSpec{
				Departments:      scale.depts,
				StudentsPerDept:  20,
				FacultyPerDept:   2,
				CoursesPerDept:   6,
				GradesPerCourse:  8,
				DegreesPerDept:   2,
				CoursesPerDegree: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			om := university.MustOmega(g)
			q, err := oql.Parse(om, `Level = 'graduate' and count(STUDENT) < 5`)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := viewobject.Instantiate(db, om, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E7 — §6: the translator-selection dialog for ω.
func BenchmarkDialogTranslatorChoice(b *testing.B) {
	_, g := university.New()
	om := university.MustOmega(g)
	answers := vupdate.PaperDialogAnswers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := vupdate.ChooseTranslator(om, answers); err != nil {
			b.Fatal(err)
		}
	}
}

// E8 — §6: the EES345 replacement under the permissive and restrictive
// translators. Each iteration runs on a freshly seeded database (setup
// excluded from the timing).
func BenchmarkReplaceTranslation(b *testing.B) {
	run := func(b *testing.B, restrictive bool) {
		answers := vupdate.PaperDialogAnswers()
		if restrictive {
			answers.Answers["outside.DEPARTMENT.modifiable"] = false
		}
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db, g := university.MustNewSeeded()
			om := university.MustOmega(g)
			tr, _, err := vupdate.ChooseTranslator(om, answers)
			if err != nil {
				b.Fatal(err)
			}
			tr.RepairInserts = true
			u := vupdate.NewUpdater(tr)
			old, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{reldb.String("CS345")})
			if err != nil || !ok {
				b.Fatal(err)
			}
			repl := old.Clone()
			_ = repl.Root().SetAttr(om, "CourseID", reldb.String("EES345"))
			_ = repl.Root().SetAttr(om, "DeptName", reldb.String("Engineering Economic Systems"))
			dep := repl.Root().Children(university.Department)[0]
			_ = dep.SetTuple(om, reldb.Tuple{reldb.String("Engineering Economic Systems"), reldb.Null(), reldb.Null()})
			b.StartTimer()
			_, err = u.ReplaceInstance(old, repl)
			if restrictive && err == nil {
				b.Fatal("restrictive translator accepted the replacement")
			}
			if !restrictive && err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("permissive", func(b *testing.B) { run(b, false) })
	b.Run("restrictive", func(b *testing.B) { run(b, true) })
}

// E9 — update translation throughput by fan-out: VO-CI inserts a fresh
// instance, VO-CD deletes it, VO-R renames it; per iteration, at growing
// grades-per-course fan-out.
func BenchmarkVOCI(b *testing.B) {
	benchUpdateOps(b, "insert")
}

// BenchmarkVOCD measures complete deletion (see BenchmarkVOCI).
func BenchmarkVOCD(b *testing.B) {
	benchUpdateOps(b, "delete")
}

// BenchmarkVOR measures replacement with a pivot key change.
func BenchmarkVOR(b *testing.B) {
	benchUpdateOps(b, "replace")
}

func benchUpdateOps(b *testing.B, op string) {
	for _, fanout := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("fanout%d", fanout), func(b *testing.B) {
			db, g := university.New()
			err := university.SeedScaled(db, university.ScaleSpec{
				Departments: 1, StudentsPerDept: fanout + 4, CoursesPerDept: 1,
				GradesPerCourse: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			om := university.MustOmega(g)
			u := vupdate.NewUpdater(vupdate.PermissiveTranslator(om))
			buildInstance := func(i int) *viewobject.Instance {
				id := fmt.Sprintf("BENCH%07d", i)
				inst := viewobject.MustNewInstance(om, reldb.Tuple{
					reldb.String(id), reldb.String("Bench"), reldb.String("Dept000"),
					reldb.Int(3), reldb.String("graduate"),
				})
				for s := 0; s < fanout; s++ {
					gr := inst.Root().MustAddChild(om, university.Grades, reldb.Tuple{
						reldb.String(id), reldb.Int(int64(s + 1)), reldb.String("Aut90"), reldb.String("A"),
					})
					gr.MustAddChild(om, university.Student, reldb.Tuple{
						reldb.Int(int64(s + 1)), reldb.String("BS"), reldb.Int(1),
					})
				}
				return inst
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch op {
				case "insert":
					if _, err := u.InsertInstance(buildInstance(i)); err != nil {
						b.Fatal(err)
					}
				case "delete":
					b.StopTimer()
					if _, err := u.InsertInstance(buildInstance(i)); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					key := reldb.Tuple{reldb.String(fmt.Sprintf("BENCH%07d", i))}
					if _, err := u.DeleteByKey(key); err != nil {
						b.Fatal(err)
					}
				case "replace":
					b.StopTimer()
					if _, err := u.InsertInstance(buildInstance(i)); err != nil {
						b.Fatal(err)
					}
					key := reldb.Tuple{reldb.String(fmt.Sprintf("BENCH%07d", i))}
					old, ok, err := viewobject.InstantiateByKey(db, om, key)
					if err != nil || !ok {
						b.Fatal(err)
					}
					repl := old.Clone()
					_ = repl.Root().SetAttr(om, "CourseID", reldb.String(fmt.Sprintf("RENAM%07d", i)))
					b.StartTimer()
					if _, err := u.ReplaceInstance(old, repl); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// E10 — amortization: the definition-time translator (dialog once, then
// translate every update) versus re-running the dialog before every
// update. The paper's claim: "the effort of answering the series of
// questions once during view-definition time is amortized over all the
// times that updates against the view are subsequently requested."
func BenchmarkAmortization(b *testing.B) {
	prepare := func(b *testing.B) (*vupdate.Updater, *university.UpdateCycle) {
		b.Helper()
		db, g := university.New()
		err := university.SeedScaled(db, university.ScaleSpec{
			Departments: 1, StudentsPerDept: 8, CoursesPerDept: 1, GradesPerCourse: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		om := university.MustOmega(g)
		tr, _, err := vupdate.ChooseTranslator(om, vupdate.PaperDialogAnswers())
		if err != nil {
			b.Fatal(err)
		}
		tr.RepairInserts = true
		cycle := university.NewUpdateCycle(om)
		return vupdate.NewUpdater(tr), cycle
	}
	b.Run("precompiled-translator", func(b *testing.B) {
		u, cycle := prepare(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cycle.Run(u, i); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dialog-per-update", func(b *testing.B) {
		u, cycle := prepare(b)
		om := u.T.Definition()
		answers := vupdate.PaperDialogAnswers()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Re-derive the translator before every update, as a system
			// without definition-time choice would have to.
			tr, _, err := vupdate.ChooseTranslator(om, answers)
			if err != nil {
				b.Fatal(err)
			}
			tr.RepairInserts = true
			if err := cycle.Run(vupdate.NewUpdater(tr), i); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The paper's amortization argument is about DBA effort: a dialog is
	// answered by a person. Simulate a (very fast) DBA taking 1ms per
	// question; the definition-time translator pays it once, the
	// per-update dialog pays ~19ms on every single update.
	slowDBA := vupdate.AnswerFunc(func(q vupdate.Question) (bool, error) {
		busyWait(time.Millisecond)
		return vupdate.PaperDialogAnswers().Answer(q)
	})
	b.Run("precompiled-with-1ms-DBA", func(b *testing.B) {
		_, cycle := prepare(b)
		db2, g2 := university.New()
		if err := university.SeedScaled(db2, university.ScaleSpec{
			Departments: 1, StudentsPerDept: 8, CoursesPerDept: 1, GradesPerCourse: 1,
		}); err != nil {
			b.Fatal(err)
		}
		_ = db2
		om2 := university.MustOmega(g2)
		cycle = university.NewUpdateCycle(om2)
		b.ResetTimer()
		// The dialog runs once, inside the measured region, then every
		// update reuses the translator.
		tr, _, err := vupdate.ChooseTranslator(om2, slowDBA)
		if err != nil {
			b.Fatal(err)
		}
		tr.RepairInserts = true
		u := vupdate.NewUpdater(tr)
		for i := 0; i < b.N; i++ {
			if err := cycle.Run(u, i); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dialog-per-update-with-1ms-DBA", func(b *testing.B) {
		u, cycle := prepare(b)
		om := u.T.Definition()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr, _, err := vupdate.ChooseTranslator(om, slowDBA)
			if err != nil {
				b.Fatal(err)
			}
			tr.RepairInserts = true
			if err := cycle.Run(vupdate.NewUpdater(tr), i); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// busyWait spins for d so the simulated DBA latency counts as CPU work in
// the benchmark rather than scheduler sleep.
func busyWait(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// E11 — baseline: flat-view deletion (Keller, §4) vs view-object deletion
// (VO-CD, §5.1) of one course with its grades. The flat translation is
// faster (one operation) but leaves integrity violations; the view-object
// translation cleans up everything. EXPERIMENTS.md records both op counts
// and the violation counts.
func BenchmarkBaselineKellerDelete(b *testing.B) {
	db, g := university.New()
	err := university.SeedScaled(db, university.ScaleSpec{
		Departments: 1, StudentsPerDept: 12, CoursesPerDept: 1, GradesPerCourse: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	view, err := keller.NewView(db, "course-grades",
		[]keller.Join{
			{Relation: university.Courses},
			{Relation: university.Grades,
				LeftAttrs: []string{"COURSES.CourseID"}, RightAttrs: []string{"CourseID"}},
		}, nil,
		[]string{"COURSES.CourseID", "COURSES.Title", "COURSES.Level", "GRADES.PID", "GRADES.Grade"})
	if err != nil {
		b.Fatal(err)
	}
	ft := keller.PermissiveTranslator(view)
	_ = g
	courses := db.MustRelation(university.Courses)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		id := fmt.Sprintf("FLAT%07d", i)
		err := db.RunInTx(func(tx *reldb.Tx) error {
			return tx.Insert(university.Courses, reldb.Tuple{
				reldb.String(id), reldb.String("T"), reldb.String("Dept000"),
				reldb.Int(3), reldb.String("graduate"),
			})
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := ft.Delete(reldb.Tuple{
			reldb.String(id), reldb.String("T"), reldb.String("graduate"),
			reldb.Int(1), reldb.String("A"),
		}); err != nil {
			b.Fatal(err)
		}
	}
	_ = courses
}

// E12 — scaling by object complexity: instantiation and complete deletion
// over synthetic ownership trees of growing depth and width.
func BenchmarkComplexitySweep(b *testing.B) {
	for _, spec := range []workload.TreeSpec{
		{Depth: 1, Width: 1, Fanout: 4, Roots: 4, Peninsulas: 1},
		{Depth: 2, Width: 2, Fanout: 4, Roots: 4, Peninsulas: 1},
		{Depth: 3, Width: 2, Fanout: 4, Roots: 4, Peninsulas: 1},
		{Depth: 2, Width: 4, Fanout: 4, Roots: 4, Peninsulas: 1},
	} {
		name := fmt.Sprintf("d%dw%d-%drels", spec.Depth, spec.Width, spec.Relations())
		b.Run("instantiate/"+name, func(b *testing.B) {
			w, err := workload.BuildTree(spec)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, ok, err := viewobject.InstantiateByKey(w.DB, w.Def, reldb.Tuple{reldb.Int(0)})
				if err != nil || !ok {
					b.Fatal(err)
				}
			}
		})
		b.Run("delete/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w, err := workload.BuildTree(spec)
				if err != nil {
					b.Fatal(err)
				}
				u := vupdate.NewUpdater(vupdate.PermissiveTranslator(w.Def))
				b.StartTimer()
				if _, err := u.DeleteByKey(reldb.Tuple{reldb.Int(0)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: instantiating Keller's translation-space enumeration (§4) —
// the cost of materializing "the space of alternatives" that the
// definition-time dialog lets the system avoid at runtime.
func BenchmarkTranslationEnumeration(b *testing.B) {
	db, _ := university.MustNewSeeded()
	view, err := keller.NewView(db, "course-grades",
		[]keller.Join{
			{Relation: university.Courses},
			{Relation: university.Grades,
				LeftAttrs: []string{"COURSES.CourseID"}, RightAttrs: []string{"CourseID"}},
		}, nil,
		[]string{"COURSES.CourseID", "COURSES.Title", "COURSES.Level", "GRADES.PID", "GRADES.Grade"})
	if err != nil {
		b.Fatal(err)
	}
	tr := keller.PermissiveTranslator(view)
	viewTuple := reldb.Tuple{
		reldb.String("CS445"), reldb.String("Distributed Systems"), reldb.String("graduate"),
		reldb.Int(5), reldb.String("B"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, err := tr.EnumerateDeletionTranslations(viewTuple)
		if err != nil || len(cands) == 0 {
			b.Fatal(err)
		}
	}
}

// Ablation: the order-preserving key codec versus a naive string join.
// The codec buys deterministic key-ordered scans; this measures its cost.
func BenchmarkKeyCodec(b *testing.B) {
	tuple := reldb.Tuple{reldb.String("CS345"), reldb.Int(42)}
	b.Run("order-preserving", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = reldb.EncodeValues(tuple...)
		}
	})
	b.Run("naive-sprintf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fmt.Sprintf("%v|%v", tuple[0], tuple[1])
		}
	})
}

// Ablation: connection traversal with a secondary index versus a scan.
func BenchmarkConnectionIndex(b *testing.B) {
	build := func(b *testing.B, indexed bool) *reldb.Relation {
		b.Helper()
		db := reldb.NewDatabase()
		rel := db.MustCreateRelation(reldb.MustSchema("G", []reldb.Attribute{
			{Name: "CourseID", Type: reldb.KindString},
			{Name: "PID", Type: reldb.KindInt},
		}, []string{"CourseID", "PID"}))
		if indexed {
			if err := rel.CreateIndex("byCourse", []string{"CourseID"}); err != nil {
				b.Fatal(err)
			}
		}
		for c := 0; c < 100; c++ {
			for s := 0; s < 50; s++ {
				if err := rel.Insert(reldb.Tuple{
					reldb.String(fmt.Sprintf("C%03d", c)), reldb.Int(int64(s)),
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		return rel
	}
	probe := reldb.Tuple{reldb.String("C050")}
	b.Run("indexed", func(b *testing.B) {
		rel := build(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := rel.MatchEqual([]string{"CourseID"}, probe)
			if err != nil || len(rows) != 50 {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		rel := build(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := rel.MatchEqual([]string{"CourseID"}, probe)
			if err != nil || len(rows) != 50 {
				b.Fatal(err)
			}
		}
	})
}

// E13 — level-at-a-time batched assembly versus the naive
// parent-at-a-time path, on the workload tree. The index-less variants
// expose the scan amplification (per-parent child fetches degrade to one
// full scan per parent; the batched path shares one scan per level); the
// scanned/node custom metric is the ratio the obs counters track.
func BenchmarkBatchedInstantiation(b *testing.B) {
	spec := workload.TreeSpec{Depth: 2, Width: 2, Fanout: 4, Roots: 30, Peninsulas: 1}
	for _, mode := range []struct {
		name    string
		naive   bool
		noIndex bool
	}{
		{"naive-noindex", true, true},
		{"batched-noindex", false, true},
		{"batched-indexed", false, false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			w, err := workload.BuildTree(spec)
			if err != nil {
				b.Fatal(err)
			}
			if mode.noIndex {
				for _, name := range w.DB.Names() {
					rel := w.DB.MustRelation(name)
					for _, ix := range rel.IndexNames() {
						if err := rel.DropIndex(ix); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			prev := viewobject.SetNaiveAssembly(mode.naive)
			defer viewobject.SetNaiveAssembly(prev)
			before := obs.Capture()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := viewobject.Instantiate(w.DB, w.Def, viewobject.Query{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d := obs.Capture().Sub(before)
			if nodes := d.Counter("viewobject.instantiate.nodes"); nodes > 0 {
				scanned := d.Counter("viewobject.instantiate.tuples_scanned")
				b.ReportMetric(float64(scanned)/float64(nodes), "scanned/node")
			}
		})
	}
}

// parallelBenchSpec is the scale fixture for E14 and the speedup test:
// ~10k instance nodes per full instantiation, enough pivot frontier for
// the fan-out to dominate worker startup.
var parallelBenchSpec = workload.TreeSpec{Depth: 2, Width: 3, Fanout: 4, Roots: 64, Peninsulas: 1}

// E14 — parallel snapshot instantiation. The worker budget tracks
// GOMAXPROCS, so `go test -bench=ParallelInstantiation -cpu 1,4`
// measures the scaling directly: the -cpu 1 run is the sequential
// baseline, the -cpu 4 run fans the pivot frontier over 4 workers.
// The output is byte-identical either way (pinned by the differential
// tests); the chunks/op metric confirms the fan-out engaged.
func BenchmarkParallelInstantiation(b *testing.B) {
	w, err := workload.BuildTree(parallelBenchSpec)
	if err != nil {
		b.Fatal(err)
	}
	prev := viewobject.SetParallelism(0) // track GOMAXPROCS (the -cpu value)
	defer viewobject.SetParallelism(prev)
	before := obs.Capture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		insts, err := viewobject.Instantiate(w.DB, w.Def, viewobject.Query{})
		if err != nil {
			b.Fatal(err)
		}
		if len(insts) != parallelBenchSpec.Roots {
			b.Fatalf("%d instances, want %d", len(insts), parallelBenchSpec.Roots)
		}
	}
	b.StopTimer()
	d := obs.Capture().Sub(before)
	b.ReportMetric(float64(d.Counter("viewobject.parallel.chunks"))/float64(b.N), "chunks/op")
	b.ReportMetric(float64(d.Counter("reldb.plancache.hits"))/float64(b.N), "planhits/op")
}

// E15 — materialized view-object reads: serving the university ω from
// the patched delta-stream cache (hit) versus a cold full instantiation
// over a fresh snapshot at the same generation (the price every read
// pays without the Materializer). The differential tests pin the two
// paths byte-identical; this measures what the cache buys.
func BenchmarkMaterializedRead(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		db, g := university.MustNewSeeded()
		om := university.MustOmega(g)
		m := viewobject.NewMaterializer(db, om)
		defer m.Close()
		if _, err := m.Instantiate(viewobject.Query{}); err != nil {
			b.Fatal(err) // build the cache cold once, off the clock
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			insts, err := m.Instantiate(viewobject.Query{})
			if err != nil {
				b.Fatal(err)
			}
			if len(insts) != 6 {
				b.Fatalf("%d instances, want 6", len(insts))
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		db, g := university.MustNewSeeded()
		om := university.MustOmega(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rtx := db.BeginRead()
			insts, err := viewobject.Instantiate(rtx, om, viewobject.Query{})
			rtx.Close()
			if err != nil {
				b.Fatal(err)
			}
			if len(insts) != 6 {
				b.Fatalf("%d instances, want 6", len(insts))
			}
		}
	})
}

// Guard: the facade re-exports work (compile-time wiring check exercised
// at runtime once).
func BenchmarkFacadeSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := penguin.NewDatabase()
		if db.TotalRows() != 0 {
			b.Fatal("fresh database not empty")
		}
	}
}

// E13 — durability: commit latency with the write-ahead log against the
// in-memory engine. Commits run from parallel goroutines so SyncCommit's
// group fsync batches — the acceptance bound is WAL within 5x of
// in-memory throughput under the same concurrency.
func BenchmarkCommitWAL(b *testing.B) {
	commitBench(b, func(b *testing.B) *penguin.Database {
		db, err := penguin.OpenDatabaseWith(b.TempDir(), penguin.OpenOptions{CheckpointInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		return db
	})
}

// BenchmarkCommitInMemory is BenchmarkCommitWAL's baseline: identical
// traffic with no durability.
func BenchmarkCommitInMemory(b *testing.B) {
	commitBench(b, func(b *testing.B) *penguin.Database {
		return penguin.NewDatabase()
	})
}

func commitBench(b *testing.B, open func(b *testing.B) *penguin.Database) {
	db := open(b)
	if _, err := db.CreateRelation(reldb.MustSchema("BENCH", []penguin.Attribute{
		{Name: "K", Type: penguin.KindInt},
		{Name: "V", Type: penguin.KindString, Nullable: true},
	}, []string{"K"})); err != nil {
		b.Fatal(err)
	}
	var key int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := atomic.AddInt64(&key, 1)
			if err := db.RunInTx(func(tx *penguin.Tx) error {
				return tx.Insert("BENCH", penguin.Tuple{penguin.Int(k), penguin.String("v")})
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E16 — sharded write scaling: VO-CI commits through the shard
// coordinator with 1, 2, and 4 shards. Every insert routes to its pivot
// key's home shard and commits on that shard's fast path, so with N
// shards there are N independent writer locks, WAL-free in-memory
// commit paths, and plan caches; throughput should scale near-linearly
// in the shard count under parallel load (run with -cpu 1,4). The
// cross-shard counters must stay zero — island-only traffic never pays
// for coordination.
func BenchmarkShardedCommit(b *testing.B) {
	spec := workload.TreeSpec{Depth: 1, Width: 1, Fanout: 1, Roots: 2}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			before := obs.Capture()
			sw, err := workload.NewShardedTree(spec, shards)
			if err != nil {
				b.Fatal(err)
			}
			defer sw.Close()
			def, err := sw.C.Object(workload.ShardedObject, 0)
			if err != nil {
				b.Fatal(err)
			}
			var key int64 = 1 << 20 // above the seeded roots
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := atomic.AddInt64(&key, 1)
					inst := viewobject.MustNewInstance(def, reldb.Tuple{reldb.Int(k), reldb.String("v")})
					inst.Root().MustAddChild(def, "N0_0", reldb.Tuple{reldb.Int(k), reldb.Int(0), reldb.String("v")})
					if _, err := sw.C.InsertInstance(workload.ShardedObject, inst); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if n := obs.Capture().Sub(before).Counter("reldb.cross.commits"); n != 0 {
				b.Fatalf("%d cross-shard commits on island-only traffic", n)
			}
		})
	}
}
