package penguin_test

import (
	"errors"
	"strings"
	"testing"

	"penguin"
)

// TestFacadeEndToEnd builds a small schema, a view object, and runs the
// full lifecycle through the public facade only — the integration path an
// external adopter would follow.
func TestFacadeEndToEnd(t *testing.T) {
	db := penguin.NewDatabase()

	// Schema: LIBRARY —* BOOK, BOOK —> AUTHOR.
	librarySchema, err := penguin.NewSchema("LIBRARY", []penguin.Attribute{
		{Name: "LibID", Type: penguin.KindString},
		{Name: "City", Type: penguin.KindString, Nullable: true},
	}, []string{"LibID"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation(librarySchema); err != nil {
		t.Fatal(err)
	}
	bookSchema, err := penguin.NewSchema("BOOK", []penguin.Attribute{
		{Name: "LibID", Type: penguin.KindString},
		{Name: "Shelf", Type: penguin.KindInt},
		{Name: "AuthorID", Type: penguin.KindInt, Nullable: true},
		{Name: "Title", Type: penguin.KindString, Nullable: true},
	}, []string{"LibID", "Shelf"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation(bookSchema); err != nil {
		t.Fatal(err)
	}
	authorSchema, err := penguin.NewSchema("AUTHOR", []penguin.Attribute{
		{Name: "AuthorID", Type: penguin.KindInt},
		{Name: "Name", Type: penguin.KindString, Nullable: true},
	}, []string{"AuthorID"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation(authorSchema); err != nil {
		t.Fatal(err)
	}

	g := penguin.NewGraph(db)
	for _, c := range []*penguin.Connection{
		{Name: "lib-books", Type: penguin.Ownership,
			From: "LIBRARY", To: "BOOK", FromAttrs: []string{"LibID"}, ToAttrs: []string{"LibID"}},
		{Name: "book-author", Type: penguin.Reference,
			From: "BOOK", To: "AUTHOR", FromAttrs: []string{"AuthorID"}, ToAttrs: []string{"AuthorID"}},
	} {
		if err := g.AddConnection(c); err != nil {
			t.Fatal(err)
		}
	}

	// Data through RQL.
	for _, stmt := range []string{
		`INSERT INTO LIBRARY VALUES ('green', 'Stanford')`,
		`INSERT INTO AUTHOR VALUES (1, 'Codd'), (2, 'Date')`,
		`INSERT INTO BOOK VALUES ('green', 1, 1, 'Relational Model'), ('green', 2, 2, 'Intro')`,
	} {
		if _, err := penguin.ExecRQL(db, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}

	// Define the object through the pipeline.
	def, err := penguin.Define(g, "library", "LIBRARY", penguin.DefaultMetric(),
		map[string][]string{"BOOK": nil, "AUTHOR": nil})
	if err != nil {
		t.Fatal(err)
	}
	if def.Complexity() != 3 {
		t.Fatalf("complexity = %d", def.Complexity())
	}
	topo := penguin.Analyze(def)
	if !topo.InIsland("BOOK") {
		t.Fatal("BOOK should be in the island")
	}

	// OQL query.
	insts, err := penguin.QueryOQL(db, def, `count(BOOK) >= 2 and exists(AUTHOR: Name = 'Codd')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 {
		t.Fatalf("instances = %d", len(insts))
	}
	if !strings.Contains(insts[0].Render(), "Relational Model") {
		t.Fatal("render missing book")
	}

	// Update lifecycle under a dialog-chosen translator.
	tr, tape, err := penguin.ChooseTranslator(def, penguin.ScriptedAnswerer{Default: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tape) == 0 {
		t.Fatal("empty dialog")
	}
	tr.RepairInserts = true
	u := penguin.NewUpdater(tr)

	// Partial insert of a new book referencing an unknown author: the
	// dependency repair inserts the author.
	res, err := u.PartialInsert(penguin.Tuple{penguin.String("green")}, "BOOK",
		penguin.Tuple{penguin.String("green"), penguin.Int(3), penguin.Int(9), penguin.String("New")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(penguin.OpInsert) != 2 { // book + repaired author
		t.Fatalf("ops:\n%s", res)
	}

	// Complete deletion drains books, authors survive.
	if _, err := u.DeleteByKey(penguin.Tuple{penguin.String("green")}); err != nil {
		t.Fatal(err)
	}
	if db.MustRelation("BOOK").Count() != 0 {
		t.Fatal("books survived")
	}
	if db.MustRelation("AUTHOR").Count() != 3 {
		t.Fatal("authors should survive")
	}

	in := &penguin.Integrity{G: g}
	vs, err := in.Audit(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}

	// Rejection path through the facade sentinel.
	tr2 := penguin.NewTranslator(def)
	u2 := penguin.NewUpdater(tr2)
	_, err = u2.DeleteByKey(penguin.Tuple{penguin.String("missing")})
	if err == nil {
		t.Fatal("zero translator should reject or fail")
	}
	inst, err := penguin.NewInstance(def, penguin.Tuple{penguin.String("blue"), penguin.Null()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u2.InsertInstance(inst); !errors.Is(err, penguin.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

// TestFacadeFlatBaseline drives the Keller baseline through the facade.
func TestFacadeFlatBaseline(t *testing.T) {
	db := penguin.NewDatabase()
	for _, stmt := range []string{
		`CREATE TABLE A (id int, v string null) KEY (id)`,
		`CREATE TABLE B (id int, aid int, w string null) KEY (id)`,
		`INSERT INTO A VALUES (1, 'x'), (2, 'y')`,
		`INSERT INTO B VALUES (10, 1, 'b1'), (11, 1, 'b2'), (12, 2, 'b3')`,
	} {
		if _, err := penguin.ExecRQL(db, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	v, err := penguin.NewFlatView(db, "ab", []penguin.FlatJoin{
		{Relation: "A"},
		{Relation: "B", LeftAttrs: []string{"A.id"}, RightAttrs: []string{"aid"}},
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := v.Materialize()
	if err != nil || rs.Len() != 3 {
		t.Fatalf("rows = %d, %v", rs.Len(), err)
	}
	ft := penguin.PermissiveFlatTranslator(v)
	res, err := ft.Delete(rs.Rows[0])
	if err != nil || res.Deletes != 1 {
		t.Fatalf("delete: %+v, %v", res, err)
	}
}
